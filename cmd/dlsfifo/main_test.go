package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/dls"
)

// writePlatform writes a small valid platform JSON and returns its path.
func writePlatform(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "platform.json")
	data := `{"workers":[
		{"name":"a","c":0.05,"w":0.3,"d":0.025},
		{"name":"b","c":0.08,"w":0.2,"d":0.04},
		{"name":"c","c":0.10,"w":0.5,"d":0.05}
	]}`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadPlatform(t *testing.T) {
	path := writePlatform(t)
	p, err := loadPlatform(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.P() != 3 || p.Workers[0].Name != "a" {
		t.Errorf("loaded platform: %v", p)
	}
	if _, err := loadPlatform(""); err == nil {
		t.Error("empty path must fail")
	}
	if _, err := loadPlatform(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file must fail")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte(`{"workers":[{"c":0,"w":1,"d":1}]}`), 0o644)
	if _, err := loadPlatform(bad); err == nil {
		t.Error("invalid platform must fail validation")
	}
}

func TestCmdScheduleAllDisciplines(t *testing.T) {
	path := writePlatform(t)
	for _, disc := range []string{"fifo", "lifo", "incw"} {
		if err := cmdSchedule([]string{"-platform", path, "-discipline", disc, "-load", "100", "-gantt"}); err != nil {
			t.Errorf("discipline %s: %v", disc, err)
		}
	}
	if err := cmdSchedule([]string{"-platform", path, "-model", "two-port"}); err != nil {
		t.Errorf("two-port: %v", err)
	}
	if err := cmdSchedule([]string{"-platform", path, "-exact"}); err != nil {
		t.Errorf("exact: %v", err)
	}
	if err := cmdSchedule([]string{"-platform", path, "-discipline", "nope"}); err == nil {
		t.Error("unknown discipline must fail")
	}
	if err := cmdSchedule([]string{"-platform", path, "-model", "nope"}); err == nil {
		t.Error("unknown model must fail")
	}
	if err := cmdSchedule([]string{}); err == nil {
		t.Error("missing platform must fail")
	}
}

func TestCmdScheduleOutAndVerify(t *testing.T) {
	platPath := writePlatform(t)
	schedPath := filepath.Join(t.TempDir(), "sched.json")
	if err := cmdSchedule([]string{"-platform", platPath, "-out", schedPath}); err != nil {
		t.Fatal(err)
	}
	if err := cmdVerify([]string{"-platform", platPath, "-schedule", schedPath}); err != nil {
		t.Errorf("verify of freshly computed schedule failed: %v", err)
	}
	// Corrupt the schedule: triple every load so it cannot fit in T = 1.
	data, err := os.ReadFile(schedPath)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := strings.ReplaceAll(string(data), `"T": 1`, `"T": 0.2`)
	if corrupted == string(data) {
		t.Fatalf("could not corrupt schedule JSON:\n%s", data)
	}
	os.WriteFile(schedPath, []byte(corrupted), 0o644)
	if err := cmdVerify([]string{"-platform", platPath, "-schedule", schedPath}); err == nil {
		t.Error("verify must reject an infeasible schedule")
	}
	// Flag errors.
	if err := cmdVerify([]string{"-platform", platPath}); err == nil {
		t.Error("missing schedule must fail")
	}
	if err := cmdVerify([]string{"-platform", platPath, "-schedule", schedPath, "-model", "nope"}); err == nil {
		t.Error("unknown model must fail")
	}
	missing := filepath.Join(t.TempDir(), "nope.json")
	if err := cmdVerify([]string{"-platform", platPath, "-schedule", missing}); err == nil {
		t.Error("missing schedule file must fail")
	}
	os.WriteFile(missing, []byte("{"), 0o644)
	if err := cmdVerify([]string{"-platform", platPath, "-schedule", missing}); err == nil {
		t.Error("malformed schedule JSON must fail")
	}
}

func TestCmdBus(t *testing.T) {
	if err := cmdBus([]string{"-c", "0.1", "-d", "0.05", "-w", "0.4, 0.6,0.8"}); err != nil {
		t.Errorf("bus: %v", err)
	}
	if err := cmdBus([]string{"-c", "0.1", "-d", "0.05"}); err == nil {
		t.Error("missing -w must fail")
	}
	if err := cmdBus([]string{"-c", "0.1", "-d", "0.05", "-w", "x"}); err == nil {
		t.Error("unparsable -w must fail")
	}
}

func TestCmdBrute(t *testing.T) {
	path := writePlatform(t)
	if err := cmdBrute([]string{"-platform", path}); err != nil {
		t.Errorf("brute: %v", err)
	}
	if err := cmdBrute([]string{}); err == nil {
		t.Error("missing platform must fail")
	}
}

// TestCmdBruteSearchFlag exercises the -search knob: both explicit
// algorithms must run and report the same optimum as the default, the bb
// algorithm must reject exact arithmetic (whose comparisons its float64
// bounds cannot certify), and an unknown name must fail.
func TestCmdBruteSearchFlag(t *testing.T) {
	path := writePlatform(t)
	for _, search := range []string{"bb", "flat"} {
		if err := cmdBrute([]string{"-platform", path, "-search", search}); err != nil {
			t.Errorf("brute -search %s: %v", search, err)
		}
	}
	if err := cmdBrute([]string{"-platform", path, "-search", "nope"}); err == nil {
		t.Error("unknown -search algorithm must fail")
	}
	if err := cmdBrute([]string{"-platform", path, "-search", "bb", "-exact"}); err == nil {
		t.Error("brute -search bb -exact must fail: the bounds cannot certify exact comparisons")
	}
	if err := cmdBrute([]string{"-platform", path, "-search", "flat", "-exact"}); err != nil {
		t.Errorf("brute -search flat -exact: %v", err)
	}
}

func TestCmdRandom(t *testing.T) {
	for _, fam := range []string{"homogeneous", "homcomm", "heterogeneous"} {
		if err := cmdRandom([]string{"-p", "4", "-family", fam, "-seed", "9"}); err != nil {
			t.Errorf("family %s: %v", fam, err)
		}
	}
	if err := cmdRandom([]string{"-family", "nope"}); err == nil {
		t.Error("unknown family must fail")
	}
}

// writeBigPlatform writes an 8-worker platform JSON: large enough that the
// 8! exhaustive FIFO search cannot finish before a nanosecond deadline.
func writeBigPlatform(t *testing.T) string {
	t.Helper()
	var b strings.Builder
	b.WriteString(`{"workers":[`)
	for i := 0; i < 8; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, `{"c":%g,"w":%g,"d":%g}`, 0.05+0.01*float64(i), 0.2+0.05*float64(i), 0.025+0.005*float64(i))
	}
	b.WriteString(`]}`)
	path := filepath.Join(t.TempDir(), "big.json")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// what it printed.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out), runErr
}

func TestCmdStrategiesListsRegistry(t *testing.T) {
	out, err := captureStdout(t, cmdStrategies)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Fields(out)
	if len(lines) != len(dls.Strategies()) {
		t.Errorf("strategies printed %d names, registry has %d:\n%s", len(lines), len(dls.Strategies()), out)
	}
	for _, want := range []string{dls.StrategyFIFO, dls.StrategyPairExhaustive, dls.StrategyFIFOExhaustive, dls.StrategyBusFIFO} {
		if !strings.Contains(out, want) {
			t.Errorf("strategies output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdScheduleTimeoutExpiresExhaustive(t *testing.T) {
	path := writeBigPlatform(t)
	// The exact-rational 8! search cannot finish within a nanosecond; the
	// engine must surface the deadline as an error.
	err := cmdSchedule([]string{"-platform", path, "-discipline", "fifo-exhaustive", "-eval", "exact", "-timeout", "1ns"})
	if err == nil {
		t.Fatal("exhaustive search with 1ns timeout must fail")
	}
	if !strings.Contains(err.Error(), "deadline") {
		t.Errorf("want a deadline error, got: %v", err)
	}
	// Without the deadline the same strategy succeeds via the pipeline.
	if err := cmdSchedule([]string{"-platform", path, "-discipline", "fifo-exhaustive"}); err != nil {
		t.Errorf("untimed exhaustive search failed: %v", err)
	}
}

func TestCmdScheduleEvalFlag(t *testing.T) {
	path := writePlatform(t)
	for _, mode := range []string{"auto", "closed-form", "direct", "simplex", "exact"} {
		out, err := captureStdout(t, func() error {
			return cmdSchedule([]string{"-platform", path, "-eval", mode})
		})
		if err != nil {
			t.Errorf("-eval %s: %v", mode, err)
			continue
		}
		if !strings.Contains(out, "eval="+mode) && mode != "exact" {
			t.Errorf("-eval %s: output does not echo the backend:\n%s", mode, out)
		}
	}
	if err := cmdSchedule([]string{"-platform", path, "-eval", "nope"}); err == nil {
		t.Error("unknown -eval backend must fail")
	}
	if err := cmdBrute([]string{"-platform", path, "-eval", "nope"}); err == nil {
		t.Error("brute: unknown -eval backend must fail")
	}
	if err := cmdBrute([]string{"-platform", path, "-eval", "direct"}); err != nil {
		t.Errorf("brute -eval direct: %v", err)
	}
}

func TestEvalBackendsAgreeOnSchedule(t *testing.T) {
	// The CLI-visible throughput must be identical (to 1e-9) across
	// backends; the deeper agreement property lives in internal/eval.
	path := writePlatform(t)
	p, err := loadPlatform(path)
	if err != nil {
		t.Fatal(err)
	}
	var rhos []float64
	for _, mode := range []dls.EvalMode{dls.EvalAuto, dls.EvalDirect, dls.EvalSimplex} {
		res, err := dls.Solve(context.Background(), dls.Request{Platform: p, Strategy: dls.StrategyFIFO, Eval: mode})
		if err != nil {
			t.Fatal(err)
		}
		rhos = append(rhos, res.Throughput)
	}
	for _, rho := range rhos[1:] {
		if diff := rho - rhos[0]; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("backend throughputs diverge: %v", rhos)
		}
	}
}

func TestGanttOfSchedule(t *testing.T) {
	path := writePlatform(t)
	p, err := loadPlatform(path)
	if err != nil {
		t.Fatal(err)
	}
	s, err := dls.OptimalFIFO(p, dls.Float64)
	if err != nil {
		t.Fatal(err)
	}
	g := ganttOfSchedule(p, s)
	for _, want := range []string{"master", "legend", "#", "="} {
		if !strings.Contains(g, want) {
			t.Errorf("gantt missing %q:\n%s", want, g)
		}
	}
}
