package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/dls"
)

// writePlatform writes a small valid platform JSON and returns its path.
func writePlatform(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "platform.json")
	data := `{"workers":[
		{"name":"a","c":0.05,"w":0.3,"d":0.025},
		{"name":"b","c":0.08,"w":0.2,"d":0.04},
		{"name":"c","c":0.10,"w":0.5,"d":0.05}
	]}`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadPlatform(t *testing.T) {
	path := writePlatform(t)
	p, err := loadPlatform(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.P() != 3 || p.Workers[0].Name != "a" {
		t.Errorf("loaded platform: %v", p)
	}
	if _, err := loadPlatform(""); err == nil {
		t.Error("empty path must fail")
	}
	if _, err := loadPlatform(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file must fail")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte(`{"workers":[{"c":0,"w":1,"d":1}]}`), 0o644)
	if _, err := loadPlatform(bad); err == nil {
		t.Error("invalid platform must fail validation")
	}
}

func TestCmdScheduleAllDisciplines(t *testing.T) {
	path := writePlatform(t)
	for _, disc := range []string{"fifo", "lifo", "incw"} {
		if err := cmdSchedule([]string{"-platform", path, "-discipline", disc, "-load", "100", "-gantt"}); err != nil {
			t.Errorf("discipline %s: %v", disc, err)
		}
	}
	if err := cmdSchedule([]string{"-platform", path, "-model", "two-port"}); err != nil {
		t.Errorf("two-port: %v", err)
	}
	if err := cmdSchedule([]string{"-platform", path, "-exact"}); err != nil {
		t.Errorf("exact: %v", err)
	}
	if err := cmdSchedule([]string{"-platform", path, "-discipline", "nope"}); err == nil {
		t.Error("unknown discipline must fail")
	}
	if err := cmdSchedule([]string{"-platform", path, "-model", "nope"}); err == nil {
		t.Error("unknown model must fail")
	}
	if err := cmdSchedule([]string{}); err == nil {
		t.Error("missing platform must fail")
	}
}

func TestCmdScheduleOutAndVerify(t *testing.T) {
	platPath := writePlatform(t)
	schedPath := filepath.Join(t.TempDir(), "sched.json")
	if err := cmdSchedule([]string{"-platform", platPath, "-out", schedPath}); err != nil {
		t.Fatal(err)
	}
	if err := cmdVerify([]string{"-platform", platPath, "-schedule", schedPath}); err != nil {
		t.Errorf("verify of freshly computed schedule failed: %v", err)
	}
	// Corrupt the schedule: triple every load so it cannot fit in T = 1.
	data, err := os.ReadFile(schedPath)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := strings.ReplaceAll(string(data), `"T": 1`, `"T": 0.2`)
	if corrupted == string(data) {
		t.Fatalf("could not corrupt schedule JSON:\n%s", data)
	}
	os.WriteFile(schedPath, []byte(corrupted), 0o644)
	if err := cmdVerify([]string{"-platform", platPath, "-schedule", schedPath}); err == nil {
		t.Error("verify must reject an infeasible schedule")
	}
	// Flag errors.
	if err := cmdVerify([]string{"-platform", platPath}); err == nil {
		t.Error("missing schedule must fail")
	}
	if err := cmdVerify([]string{"-platform", platPath, "-schedule", schedPath, "-model", "nope"}); err == nil {
		t.Error("unknown model must fail")
	}
	missing := filepath.Join(t.TempDir(), "nope.json")
	if err := cmdVerify([]string{"-platform", platPath, "-schedule", missing}); err == nil {
		t.Error("missing schedule file must fail")
	}
	os.WriteFile(missing, []byte("{"), 0o644)
	if err := cmdVerify([]string{"-platform", platPath, "-schedule", missing}); err == nil {
		t.Error("malformed schedule JSON must fail")
	}
}

func TestCmdBus(t *testing.T) {
	if err := cmdBus([]string{"-c", "0.1", "-d", "0.05", "-w", "0.4, 0.6,0.8"}); err != nil {
		t.Errorf("bus: %v", err)
	}
	if err := cmdBus([]string{"-c", "0.1", "-d", "0.05"}); err == nil {
		t.Error("missing -w must fail")
	}
	if err := cmdBus([]string{"-c", "0.1", "-d", "0.05", "-w", "x"}); err == nil {
		t.Error("unparsable -w must fail")
	}
}

func TestCmdBrute(t *testing.T) {
	path := writePlatform(t)
	if err := cmdBrute([]string{"-platform", path}); err != nil {
		t.Errorf("brute: %v", err)
	}
	if err := cmdBrute([]string{}); err == nil {
		t.Error("missing platform must fail")
	}
}

func TestCmdRandom(t *testing.T) {
	for _, fam := range []string{"homogeneous", "homcomm", "heterogeneous"} {
		if err := cmdRandom([]string{"-p", "4", "-family", fam, "-seed", "9"}); err != nil {
			t.Errorf("family %s: %v", fam, err)
		}
	}
	if err := cmdRandom([]string{"-family", "nope"}); err == nil {
		t.Error("unknown family must fail")
	}
}

func TestGanttOfSchedule(t *testing.T) {
	path := writePlatform(t)
	p, err := loadPlatform(path)
	if err != nil {
		t.Fatal(err)
	}
	s, err := dls.OptimalFIFO(p, dls.Float64)
	if err != nil {
		t.Fatal(err)
	}
	g := ganttOfSchedule(p, s)
	for _, want := range []string{"master", "legend", "#", "="} {
		if !strings.Contains(g, want) {
			t.Errorf("gantt missing %q:\n%s", want, g)
		}
	}
}
