// Command dlsd serves the scheduling engine over HTTP: POST /v1/solve and
// /v1/solve/batch front a shared dls.Solver behind an admission-window
// micro-batcher (concurrent requests coalesce into SolveBatch calls and
// the SoA chain prepass), with load shedding, per-request deadlines via
// the X-Timeout header, Prometheus metrics on /metrics, request tracing
// behind /debug/requests and graceful drain on SIGINT/SIGTERM.
//
//	dlsd -addr :8080 -window 2ms -window-size 64 -cache 4096
//
// Tracing is on by default: every response carries an X-Trace-Id header,
// GET /debug/requests lists recent and slowest-per-route traces, and
// /metrics exposes per-stage latency histograms. -debug-addr starts a
// second listener with net/http/pprof (off by default; pair with
// `dlsexp -profile` for offline solver profiles).
//
// Drive it with cmd/dlsload, or by hand:
//
//	curl -s localhost:8080/v1/solve -d '{
//	  "platform": {"workers": [
//	    {"c": 0.05, "w": 0.40, "d": 0.025},
//	    {"c": 0.10, "w": 0.25, "d": 0.050}
//	  ]},
//	  "strategy": "fifo", "load": 1000
//	}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/dls"
	"repro/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		slog.Error("dlsd exiting", "error", err)
		os.Exit(1)
	}
}

// newLogger builds the process logger from -log-format / -log-level.
func newLogger(format, level string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("dlsd: invalid -log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("dlsd: invalid -log-format %q: want json or text", format)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dlsd", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", ":8080", "listen address")
		window      = fs.Duration("window", 2*time.Millisecond, "admission window; 0 disables micro-batching")
		windowSize  = fs.Int("window-size", 64, "flush a window early at this many requests")
		queueCap    = fs.Int("queue", 1024, "admission queue bound; requests beyond it are shed with 429")
		workers     = fs.Int("workers", 2, "windows solved concurrently")
		retryAfter  = fs.Duration("retry-after", 50*time.Millisecond, "advisory Retry-After on 429")
		cacheSize   = fs.Int("cache", 4096, "LRU result-cache capacity; 0 disables caching")
		parallelism = fs.Int("parallelism", runtime.GOMAXPROCS(0), "solver worker-pool size")
		timeout     = fs.Duration("solve-timeout", 30*time.Second, "per-solve deadline; 0 for none")
		drain       = fs.Duration("drain", 10*time.Second, "shutdown drain budget")
		adaptive    = fs.Bool("adaptive", false, "adaptive SLO-aware admission (window/window-size become the base)")
		sloClasses  = fs.String("slo-classes", "", "SLO classes as name=deadline:priority,... (default: tight/standard/batch)")
		degrade     = fs.Bool("degrade", true, "degrade deadline-busting exhaustive searches to the best closed-form heuristic")

		trace        = fs.Bool("trace", true, "per-request tracing: X-Trace-Id, /debug/requests, per-stage histograms on /metrics")
		traceRing    = fs.Int("trace-ring", 256, "recent traces kept for /debug/requests")
		traceSlowest = fs.Int("trace-slowest", 8, "slowest exemplar traces kept per route")
		debugAddr    = fs.String("debug-addr", "", "separate listener for /debug/pprof/* (empty = off)")
		logFormat    = fs.String("log-format", "text", "log format: text or json")
		logLevel     = fs.String("log-level", "info", "log level: debug, info, warn, error (debug logs every request)")

		chaosSeed      = fs.Int64("chaos-seed", 1, "seed for the fault-injection RNG")
		chaosError     = fs.Float64("chaos-error", 0, "probability of an injected 503 per data-plane request")
		chaosLatency   = fs.Float64("chaos-latency", 0, "probability of injected latency per data-plane request")
		chaosLatencyD  = fs.Duration("chaos-latency-ms", 20*time.Millisecond, "injected latency duration")
		chaosDrop      = fs.Float64("chaos-drop", 0, "probability of an injected connection drop per data-plane request")
		chaosSlow      = fs.Float64("chaos-slow", 0, "probability of a slow-loris body read per data-plane request")
		chaosDownEvery = fs.Duration("chaos-down-every", 0, "blackout period: every this often the data plane goes dark")
		chaosDownFor   = fs.Duration("chaos-down-for", 0, "blackout length within each -chaos-down-every period")
		chaosCrash     = fs.Int64("chaos-crash-after", 0, "exit(1) after this many data-plane requests (exercises supervisors)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	lg, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		return err
	}
	slog.SetDefault(lg)

	opts := []dls.Option{dls.WithParallelism(*parallelism)}
	if *degrade {
		opts = append(opts, dls.WithDegradation())
	}
	if *cacheSize > 0 {
		opts = append(opts, dls.WithCache(*cacheSize))
	}
	if *timeout > 0 {
		opts = append(opts, dls.WithTimeout(*timeout))
	}
	solver, err := dls.NewSolver(opts...)
	if err != nil {
		return err
	}
	scfg := server.Config{
		Solver:        solver,
		Window:        *window,
		NoBatchWindow: *window == 0,
		WindowSize:    *windowSize,
		QueueCap:      *queueCap,
		Workers:       *workers,
		RetryAfter:    *retryAfter,
		Trace:         *trace,
		TraceRing:     *traceRing,
		TraceSlowest:  *traceSlowest,
		Log:           lg,
	}
	if *adaptive {
		scfg.Adaptive = &dls.AdaptiveConfig{}
	}
	if *sloClasses != "" {
		if scfg.Classes, err = dls.ParseSLOClasses(*sloClasses); err != nil {
			return err
		}
	}
	srv, err := server.New(scfg)
	if err != nil {
		return err
	}

	var handler http.Handler = srv
	ccfg := server.ChaosConfig{
		Seed:        *chaosSeed,
		ErrorRate:   *chaosError,
		LatencyRate: *chaosLatency,
		Latency:     *chaosLatencyD,
		DropRate:    *chaosDrop,
		SlowRate:    *chaosSlow,
		DownEvery:   *chaosDownEvery,
		DownFor:     *chaosDownFor,
		CrashAfter:  *chaosCrash,
		OnCrash: func() {
			lg.Error("chaos: crashing", "after", *chaosCrash)
			os.Exit(1)
		},
	}
	if ccfg.Enabled() {
		chaos := server.NewChaos(ccfg, srv)
		handler = chaos
		defer func() {
			cs := chaos.Stats()
			lg.Info("chaos injected",
				"errors", cs.Errors, "latencies", cs.Latencies, "drops", cs.Drops,
				"slow_reads", cs.SlowReads, "blackouts", cs.Blackouts, "requests", cs.Requests)
		}()
		lg.Info("chaos enabled",
			"seed", *chaosSeed, "error", *chaosError, "latency", *chaosLatency,
			"drop", *chaosDrop, "slow", *chaosSlow, "down_for", *chaosDownFor,
			"down_every", *chaosDownEvery, "crash_after", *chaosCrash)
	}

	// The pprof endpoints live on their own listener so profiling access
	// never shares the data-plane address (and never goes through chaos).
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dbg := &http.Server{Addr: *debugAddr, Handler: dmux, ReadHeaderTimeout: 5 * time.Second}
		defer dbg.Close()
		go func() {
			lg.Info("pprof listening", "addr", *debugAddr)
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				lg.Warn("pprof listener failed", "error", err)
			}
		}()
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() {
		mode := "fixed"
		if *adaptive {
			mode = "adaptive"
		}
		lg.Info("listening",
			"addr", *addr, "window", *window, "window_size", *windowSize,
			"queue", *queueCap, "workers", *workers, "cache", *cacheSize,
			"parallelism", *parallelism, "admission", mode, "trace", *trace)
		errc <- httpSrv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		return fmt.Errorf("dlsd: serve: %w", err)
	case s := <-sig:
		lg.Info("draining", "signal", s.String(), "budget", *drain)
	}

	// Stop accepting, then drain in-flight admission windows.
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		lg.Warn("shutdown", "error", err)
	}
	srv.Close()
	st := solver.Stats()
	lg.Info("drained",
		"solves", st.Solves, "windows", st.Windows, "batched_windows", st.BatchedWindows,
		"batched_requests", st.BatchedRequests, "shed", st.Shed,
		"cache_hits", st.Hits, "cache_misses", st.Misses, "cache_evictions", st.Evictions)
	return nil
}
