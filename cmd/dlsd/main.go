// Command dlsd serves the scheduling engine over HTTP: POST /v1/solve and
// /v1/solve/batch front a shared dls.Solver behind an admission-window
// micro-batcher (concurrent requests coalesce into SolveBatch calls and
// the SoA chain prepass), with load shedding, per-request deadlines via
// the X-Timeout header, Prometheus metrics on /metrics and graceful
// drain on SIGINT/SIGTERM.
//
//	dlsd -addr :8080 -window 2ms -window-size 64 -cache 4096
//
// Drive it with cmd/dlsload, or by hand:
//
//	curl -s localhost:8080/v1/solve -d '{
//	  "platform": {"workers": [
//	    {"c": 0.05, "w": 0.40, "d": 0.025},
//	    {"c": 0.10, "w": 0.25, "d": 0.050}
//	  ]},
//	  "strategy": "fifo", "load": 1000
//	}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/dls"
	"repro/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dlsd", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", ":8080", "listen address")
		window      = fs.Duration("window", 2*time.Millisecond, "admission window; 0 disables micro-batching")
		windowSize  = fs.Int("window-size", 64, "flush a window early at this many requests")
		queueCap    = fs.Int("queue", 1024, "admission queue bound; requests beyond it are shed with 429")
		workers     = fs.Int("workers", 2, "windows solved concurrently")
		retryAfter  = fs.Duration("retry-after", 50*time.Millisecond, "advisory Retry-After on 429")
		cacheSize   = fs.Int("cache", 4096, "LRU result-cache capacity; 0 disables caching")
		parallelism = fs.Int("parallelism", runtime.GOMAXPROCS(0), "solver worker-pool size")
		timeout     = fs.Duration("solve-timeout", 30*time.Second, "per-solve deadline; 0 for none")
		drain       = fs.Duration("drain", 10*time.Second, "shutdown drain budget")
		adaptive    = fs.Bool("adaptive", false, "adaptive SLO-aware admission (window/window-size become the base)")
		sloClasses  = fs.String("slo-classes", "", "SLO classes as name=deadline:priority,... (default: tight/standard/batch)")
		degrade     = fs.Bool("degrade", true, "degrade deadline-busting exhaustive searches to the best closed-form heuristic")

		chaosSeed      = fs.Int64("chaos-seed", 1, "seed for the fault-injection RNG")
		chaosError     = fs.Float64("chaos-error", 0, "probability of an injected 503 per data-plane request")
		chaosLatency   = fs.Float64("chaos-latency", 0, "probability of injected latency per data-plane request")
		chaosLatencyD  = fs.Duration("chaos-latency-ms", 20*time.Millisecond, "injected latency duration")
		chaosDrop      = fs.Float64("chaos-drop", 0, "probability of an injected connection drop per data-plane request")
		chaosSlow      = fs.Float64("chaos-slow", 0, "probability of a slow-loris body read per data-plane request")
		chaosDownEvery = fs.Duration("chaos-down-every", 0, "blackout period: every this often the data plane goes dark")
		chaosDownFor   = fs.Duration("chaos-down-for", 0, "blackout length within each -chaos-down-every period")
		chaosCrash     = fs.Int64("chaos-crash-after", 0, "exit(1) after this many data-plane requests (exercises supervisors)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := []dls.Option{dls.WithParallelism(*parallelism)}
	if *degrade {
		opts = append(opts, dls.WithDegradation())
	}
	if *cacheSize > 0 {
		opts = append(opts, dls.WithCache(*cacheSize))
	}
	if *timeout > 0 {
		opts = append(opts, dls.WithTimeout(*timeout))
	}
	solver, err := dls.NewSolver(opts...)
	if err != nil {
		return err
	}
	scfg := server.Config{
		Solver:        solver,
		Window:        *window,
		NoBatchWindow: *window == 0,
		WindowSize:    *windowSize,
		QueueCap:      *queueCap,
		Workers:       *workers,
		RetryAfter:    *retryAfter,
	}
	if *adaptive {
		scfg.Adaptive = &dls.AdaptiveConfig{}
	}
	if *sloClasses != "" {
		if scfg.Classes, err = dls.ParseSLOClasses(*sloClasses); err != nil {
			return err
		}
	}
	srv, err := server.New(scfg)
	if err != nil {
		return err
	}

	var handler http.Handler = srv
	ccfg := server.ChaosConfig{
		Seed:        *chaosSeed,
		ErrorRate:   *chaosError,
		LatencyRate: *chaosLatency,
		Latency:     *chaosLatencyD,
		DropRate:    *chaosDrop,
		SlowRate:    *chaosSlow,
		DownEvery:   *chaosDownEvery,
		DownFor:     *chaosDownFor,
		CrashAfter:  *chaosCrash,
		OnCrash: func() {
			log.Printf("dlsd: chaos: crashing after %d requests", *chaosCrash)
			os.Exit(1)
		},
	}
	if ccfg.Enabled() {
		chaos := server.NewChaos(ccfg, srv)
		handler = chaos
		defer func() {
			cs := chaos.Stats()
			log.Printf("dlsd: chaos injected: %d errors, %d latencies, %d drops, %d slow reads, %d blackouts over %d requests",
				cs.Errors, cs.Latencies, cs.Drops, cs.SlowReads, cs.Blackouts, cs.Requests)
		}()
		log.Printf("dlsd: chaos enabled (seed=%d error=%g latency=%g drop=%g slow=%g down=%v/%v crash-after=%d)",
			*chaosSeed, *chaosError, *chaosLatency, *chaosDrop, *chaosSlow, *chaosDownFor, *chaosDownEvery, *chaosCrash)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() {
		mode := "fixed"
		if *adaptive {
			mode = "adaptive"
		}
		log.Printf("dlsd: listening on %s (window=%v size=%d queue=%d workers=%d cache=%d parallelism=%d admission=%s)",
			*addr, *window, *windowSize, *queueCap, *workers, *cacheSize, *parallelism, mode)
		errc <- httpSrv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		return fmt.Errorf("dlsd: serve: %w", err)
	case s := <-sig:
		log.Printf("dlsd: %v: draining (budget %v)", s, *drain)
	}

	// Stop accepting, then drain in-flight admission windows.
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("dlsd: shutdown: %v", err)
	}
	srv.Close()
	st := solver.Stats()
	log.Printf("dlsd: drained: %d solves, %d windows (%d batched, %d requests), %d shed, cache %d/%d/%d hit/miss/evict",
		st.Solves, st.Windows, st.BatchedWindows, st.BatchedRequests, st.Shed, st.Hits, st.Misses, st.Evictions)
	return nil
}
