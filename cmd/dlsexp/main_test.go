package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// quickArgs keeps test sweeps tiny.
func quickArgs(extra ...string) []string {
	base := []string{"-platforms", "3", "-workers", "4", "-m", "100"}
	return append(base, extra...)
}

func TestRunSingleFigure(t *testing.T) {
	var sb strings.Builder
	if err := run(quickArgs("-figure", "14a"), &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Figure 14(x=1)", "nb of workers"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunPairFigure exercises the open-question probe and its
// -pair-search knob: both algorithms must run, and an unknown name fails
// before any figure work starts.
func TestRunPairFigure(t *testing.T) {
	for _, search := range []string{"auto", "bb", "flat"} {
		var sb strings.Builder
		if err := run(quickArgs("-figure", "pair", "-pair-search", search), &sb); err != nil {
			t.Fatalf("-pair-search %s: %v", search, err)
		}
		if !strings.Contains(sb.String(), "Figure pair") {
			t.Errorf("-pair-search %s output missing the pair figure:\n%s", search, sb.String())
		}
	}
	if err := run(quickArgs("-figure", "pair", "-pair-search", "nope"), &strings.Builder{}); err == nil {
		t.Error("unknown -pair-search algorithm must fail")
	}
}

func TestRunCSV(t *testing.T) {
	var sb strings.Builder
	if err := run(quickArgs("-figure", "8", "-csv"), &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# figure 8") || !strings.Contains(out, "megabytes,") {
		t.Errorf("CSV output malformed:\n%s", out)
	}
}

func TestRunSpread(t *testing.T) {
	var sb strings.Builder
	if err := run(quickArgs("-figure", "12", "-quick", "-spread"), &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "(sd)") {
		t.Error("spread columns missing")
	}
}

func TestRunSVG(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fig9.svg")
	var sb strings.Builder
	if err := run(quickArgs("-figure", "9", "-svg", path), &sb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "</svg>") {
		t.Error("SVG file truncated")
	}
	if !strings.Contains(sb.String(), "SVG written") {
		t.Error("missing confirmation line")
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-figure", "nope"}, &sb); err == nil {
		t.Error("unknown figure must fail")
	}
	if err := run([]string{}, &sb); err == nil {
		t.Error("no figure and no -all must fail")
	}
	if err := run([]string{"-not-a-flag"}, &sb); err == nil {
		t.Error("bad flag must fail")
	}
}

func TestRunSeedOverrideChangesData(t *testing.T) {
	var a, b, c strings.Builder
	if err := run(quickArgs("-figure", "12", "-quick", "-seed", "1"), &a); err != nil {
		t.Fatal(err)
	}
	if err := run(quickArgs("-figure", "12", "-quick", "-seed", "2"), &b); err != nil {
		t.Fatal(err)
	}
	if err := run(quickArgs("-figure", "12", "-quick", "-seed", "1"), &c); err != nil {
		t.Fatal(err)
	}
	if a.String() == b.String() {
		t.Error("different seeds produced identical sweeps")
	}
	if a.String() != c.String() {
		t.Error("same seed must reproduce identical output")
	}
}

func TestRunProfileCPU(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cpu.pprof")
	var sb strings.Builder
	if err := run(quickArgs("-figure", "8", "-profile", "cpu", "-profile-out", path), &sb); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Error("cpu profile file is empty")
	}
	if !strings.Contains(sb.String(), "cpu profile written to") {
		t.Error("missing profile confirmation line")
	}
}

func TestRunProfileMem(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mem.pprof")
	var sb strings.Builder
	if err := run(quickArgs("-figure", "8", "-profile", "mem", "-profile-out", path), &sb); err != nil {
		t.Fatal(err)
	}
	if info, err := os.Stat(path); err != nil || info.Size() == 0 {
		t.Fatalf("mem profile missing or empty: %v", err)
	}
}

func TestRunProfileUnknownKind(t *testing.T) {
	var sb strings.Builder
	if err := run(quickArgs("-figure", "8", "-profile", "goroutine"), &sb); err == nil {
		t.Fatal("unknown -profile kind accepted")
	}
}
