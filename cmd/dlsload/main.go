// Command dlsload is a closed-loop load generator for dlsd: a pool of
// workers drives POST /v1/solve at a target rate (or flat out), over a
// generated mix of platforms and strategies, and reports throughput,
// status-code counts, latency percentiles and the server's micro-batching
// counters (scraped from /metrics before and after the run).
//
// Requests travel through the fleet-aware resilience client: -url takes
// a comma-separated replica list, 429s are retried after their
// Retry-After, transient 5xx/transport faults are retried with capped
// jittered backoff, and per-replica circuit breakers short-circuit dead
// replicas until a half-open probe succeeds. The report classifies every
// logical request as ok / shed / failed / injected (a final fault the
// server marked with X-Chaos) and derives availability = ok/(ok+failed),
// chaos-injected faults excluded.
//
//	dlsload -url http://localhost:8080,http://localhost:8081 -duration 5s
//
// CI uses it as a smoke gate: -fail-on-error fails the run on any
// non-2xx/non-429 response, -min-batched-windows fails it when the
// admission window never coalesced traffic, -min-rps gates throughput,
// -min-availability gates the non-injected success rate under chaos,
// -min-breaker-cycles demands completed open → half-open → close breaker
// recoveries, and -json writes the report for the benchmark artifact.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/dls"
	"repro/internal/resilience"
	"repro/internal/server"
	"repro/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// Report is the machine-readable outcome of one run (the -json artifact).
type Report struct {
	URL         string   `json:"url"`
	Replicas    []string `json:"replicas"`
	Mix         string   `json:"mix"`
	Seed        int64    `json:"seed"`
	SLOClass    string   `json:"slo_class,omitempty"`
	Concurrency int      `json:"concurrency"`
	TargetRPS   float64  `json:"target_rps,omitempty"`
	Duration    float64  `json:"duration_seconds"`
	Requests    uint64   `json:"requests"`
	RPS         float64  `json:"rps"`
	// Codes counts final status codes — after retries, not per attempt.
	Codes     map[string]uint64 `json:"codes"`
	Transport uint64            `json:"transport_errors"`
	// OK (2xx) / Shed (final 429) / Failed (final 5xx or transport
	// error) / Injected (final fault the server stamped with X-Chaos)
	// partition Requests. Availability is ok/(ok+failed): shedding is
	// backpressure and injected faults are the experiment, not outages.
	OK           uint64             `json:"ok"`
	Shed         uint64             `json:"shed"`
	Failed       uint64             `json:"failed"`
	Injected     uint64             `json:"injected"`
	Availability float64            `json:"availability"`
	LatencyMS    map[string]float64 `json:"latency_ms"`
	Resilience   *resilience.Stats  `json:"resilience,omitempty"`
	Server       map[string]float64 `json:"server_metrics_delta,omitempty"`
	// SlowTraces lists the trace ids of the slowest percentile of traced
	// responses (the server stamps X-Trace-Id when -trace is on), ready to
	// be looked up under /debug/requests on the replica that served them.
	SlowTraces []SlowTrace `json:"slow_traces,omitempty"`
}

// SlowTrace points one slow response at its server-side trace.
type SlowTrace struct {
	TraceID   string  `json:"trace_id"`
	LatencyMS float64 `json:"latency_ms"`
	Status    int     `json:"status"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dlsload", flag.ContinueOnError)
	var (
		urlFlag     = fs.String("url", "http://127.0.0.1:8080", "dlsd base URL(s), comma-separated for a fleet")
		duration    = fs.Duration("duration", 5*time.Second, "run length")
		concurrency = fs.Int("concurrency", 64, "closed-loop workers")
		rps         = fs.Float64("rps", 0, "target request rate; 0 = flat out")
		p           = fs.Int("p", 6, "workers per generated platform")
		platforms   = fs.Int("platforms", 32, "distinct platforms in the pool")
		mix         = fs.String("mix", "chain", "workload mix: chain | mixed | search")
		seed        = fs.Int64("seed", 1, "workload seed")
		sloClass    = fs.String("slo-class", "", "X-SLO-Class header stamped on every request")
		retries     = fs.Int("retries", 3, "retry attempts per request beyond the first (negative disables)")
		reqTimeout  = fs.Duration("request-timeout", 10*time.Second, "per-logical-request budget (attempts + backoffs)")
		brkThresh   = fs.Int("breaker-threshold", 5, "consecutive failures that open a replica's breaker (negative disables)")
		brkCooldown = fs.Duration("breaker-cooldown", 500*time.Millisecond, "breaker open -> half-open cooldown")
		capture     = fs.String("capture", "", "write the sent arrivals as a JSONL trace (replayable by dlssim -scenario trace)")
		jsonOut     = fs.String("json", "", "write the report as JSON to this file")
		failOnError = fs.Bool("fail-on-error", false, "exit non-zero on any transport error or non-2xx/non-429 response")
		minBatched  = fs.Uint64("min-batched-windows", 0, "exit non-zero when fewer windows coalesced >= 2 requests")
		minRPS      = fs.Float64("min-rps", 0, "exit non-zero below this achieved request rate")
		minAvail    = fs.Float64("min-availability", 0, "exit non-zero below this ok/(ok+failed) rate (chaos-injected faults excluded)")
		minCycles   = fs.Uint64("min-breaker-cycles", 0, "exit non-zero below this many completed breaker open->half-open->close cycles")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var replicas []string
	for _, u := range strings.Split(*urlFlag, ",") {
		if u = strings.TrimSpace(u); u != "" {
			replicas = append(replicas, strings.TrimSuffix(u, "/"))
		}
	}
	if len(replicas) == 0 {
		return fmt.Errorf("dlsload: -url lists no replicas")
	}

	pool, err := workload(rand.New(rand.NewSource(*seed)), *mix, *p, *platforms)
	if err != nil {
		return err
	}

	client, err := resilience.New(resilience.Config{
		Replicas:         replicas,
		MaxRetries:       *retries,
		Seed:             *seed,
		BreakerThreshold: *brkThresh,
		BreakerCooldown:  *brkCooldown,
		AttemptTimeout:   *reqTimeout,
	})
	if err != nil {
		return err
	}

	scraper := &http.Client{Timeout: 30 * time.Second}
	before, err := scrapeFleet(scraper, replicas)
	if err != nil {
		return fmt.Errorf("dlsload: scraping /metrics before the run: %w", err)
	}

	header := http.Header{}
	header.Set("Content-Type", "application/json")
	if *sloClass != "" {
		header.Set("X-SLO-Class", *sloClass)
	}

	var (
		total, transport         atomic.Uint64
		ok, shed, fail, injected atomic.Uint64
		next                     atomic.Int64
		codes                    sync.Map // status code -> *atomic.Uint64
		wg                       sync.WaitGroup
	)
	latencies := make([][]float64, *concurrency)
	traced := make([][]SlowTrace, *concurrency)
	captured := make([][]sim.TraceEvent, *concurrency)
	start := time.Now()
	stop := start.Add(*duration)
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w) + 1))
			for time.Now().Before(stop) {
				if *rps > 0 {
					// Schedule request n at start + n/rps; sleeping to the
					// slot paces the whole pool without a central ticker.
					n := next.Add(1) - 1
					at := start.Add(time.Duration(float64(n) / *rps * float64(time.Second)))
					if d := time.Until(at); d > 0 {
						time.Sleep(d)
					}
					if !time.Now().Before(stop) {
						return
					}
				}
				entry := pool[rng.Intn(len(pool))]
				begin := time.Now()
				if *capture != "" {
					captured[w] = append(captured[w], sim.TraceEvent{
						TNanos:   begin.Sub(start).Nanoseconds(),
						Class:    *sloClass,
						Kind:     entry.kind,
						Platform: entry.pb,
					})
				}
				ctx, cancel := context.WithTimeout(context.Background(), *reqTimeout)
				resp, err := client.Do(ctx, http.MethodPost, "/v1/solve", entry.body, header)
				lat := time.Since(begin)
				total.Add(1)
				if err != nil {
					cancel()
					transport.Add(1)
					fail.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining for keep-alive
				resp.Body.Close()
				cancel()
				c, found := codes.Load(resp.StatusCode)
				if !found {
					c, _ = codes.LoadOrStore(resp.StatusCode, new(atomic.Uint64))
				}
				c.(*atomic.Uint64).Add(1)
				if tid := resp.Header.Get(server.TraceIDHeader); tid != "" {
					traced[w] = append(traced[w], SlowTrace{TraceID: tid, LatencyMS: lat.Seconds() * 1e3, Status: resp.StatusCode})
				}
				switch {
				case resp.StatusCode >= 200 && resp.StatusCode < 300:
					ok.Add(1)
				case resp.StatusCode == http.StatusTooManyRequests:
					shed.Add(1)
				case resp.Header.Get(server.ChaosHeader) != "":
					injected.Add(1)
				default:
					fail.Add(1)
				}
				latencies[w] = append(latencies[w], lat.Seconds())
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	after, err := scrapeFleet(scraper, replicas)
	if err != nil {
		return fmt.Errorf("dlsload: scraping /metrics after the run: %w", err)
	}

	rstats := client.Stats()
	report := Report{
		URL:         *urlFlag,
		Replicas:    replicas,
		Mix:         *mix,
		Seed:        *seed,
		SLOClass:    *sloClass,
		Concurrency: *concurrency,
		TargetRPS:   *rps,
		Duration:    elapsed.Seconds(),
		Requests:    total.Load(),
		RPS:         float64(total.Load()) / elapsed.Seconds(),
		Codes:       map[string]uint64{},
		Transport:   transport.Load(),
		OK:          ok.Load(),
		Shed:        shed.Load(),
		Failed:      fail.Load(),
		Injected:    injected.Load(),
		LatencyMS:   map[string]float64{},
		Resilience:  &rstats,
		Server:      map[string]float64{},
	}
	if denom := report.OK + report.Failed; denom > 0 {
		report.Availability = float64(report.OK) / float64(denom)
	}
	codes.Range(func(k, v any) bool {
		report.Codes[strconv.Itoa(k.(int))] = v.(*atomic.Uint64).Load()
		return true
	})
	var all []float64
	for _, ls := range latencies {
		all = append(all, ls...)
	}
	sort.Float64s(all)
	for _, q := range []struct {
		name string
		q    float64
	}{{"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99}, {"max", 1}} {
		report.LatencyMS[q.name] = percentile(all, q.q) * 1e3
	}
	for key, b := range before {
		if a, found := after[key]; found && a >= b {
			report.Server[key] = a - b
		}
	}
	report.SlowTraces = slowTraces(traced, percentile(all, 0.99)*1e3)

	fmt.Fprintf(out, "dlsload: %d requests in %.2fs = %.0f req/s (mix=%s, concurrency=%d, replicas=%d)\n",
		report.Requests, report.Duration, report.RPS, report.Mix, report.Concurrency, len(replicas))
	fmt.Fprintf(out, "  ok=%d shed=%d failed=%d injected=%d availability=%.4f\n",
		report.OK, report.Shed, report.Failed, report.Injected, report.Availability)
	fmt.Fprintf(out, "  codes: %v, transport errors: %d\n", report.Codes, report.Transport)
	fmt.Fprintf(out, "  retries=%d backoffs=%d retry_after=%d short_circuits=%d breaker open/half/close=%d/%d/%d\n",
		rstats.Retries, rstats.Backoffs, rstats.RetryAfterHonored, rstats.ShortCircuits,
		rstats.BreakerOpens, rstats.BreakerHalfOpens, rstats.BreakerCloses)
	fmt.Fprintf(out, "  latency ms: p50=%.3f p90=%.3f p99=%.3f max=%.3f\n",
		report.LatencyMS["p50"], report.LatencyMS["p90"], report.LatencyMS["p99"], report.LatencyMS["max"])
	if n := len(report.SlowTraces); n > 0 {
		fmt.Fprintf(out, "  slow traces: %d at/above p99 (slowest %s, %.3fms) — look them up under /debug/requests\n",
			n, report.SlowTraces[0].TraceID, report.SlowTraces[0].LatencyMS)
	}
	fmt.Fprintf(out, "  server: windows=%.0f batched=%.0f batched_requests=%.0f prepass=%.0f shed=%.0f cache_hits=%.0f degraded=%.0f\n",
		report.Server["dlsd_windows_total"], report.Server["dlsd_batched_windows_total"],
		report.Server["dlsd_batched_requests_total"], report.Server["dlsd_prepass_requests_total"],
		report.Server["dlsd_shed_total"], report.Server["dlsd_cache_hits_total"],
		report.Server["dlsd_degraded_total"])

	if *jsonOut != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if *capture != "" {
		if err := writeCapture(*capture, captured); err != nil {
			return fmt.Errorf("dlsload: writing capture: %w", err)
		}
	}

	if *failOnError {
		if report.Transport > 0 {
			return fmt.Errorf("dlsload: %d transport errors", report.Transport)
		}
		for code, n := range report.Codes {
			if !strings.HasPrefix(code, "2") && code != "429" {
				return fmt.Errorf("dlsload: %d responses with status %s", n, code)
			}
		}
	}
	if *minBatched > 0 && report.Server["dlsd_batched_windows_total"] < float64(*minBatched) {
		return fmt.Errorf("dlsload: only %.0f batched windows, want >= %d: micro-batching is not firing",
			report.Server["dlsd_batched_windows_total"], *minBatched)
	}
	if *minRPS > 0 && report.RPS < *minRPS {
		return fmt.Errorf("dlsload: %.0f req/s under the %.0f floor", report.RPS, *minRPS)
	}
	if *minAvail > 0 && report.Availability < *minAvail {
		return fmt.Errorf("dlsload: availability %.4f under the %.4f floor (%d ok, %d failed)",
			report.Availability, *minAvail, report.OK, report.Failed)
	}
	if *minCycles > 0 && rstats.BreakerCloses < *minCycles {
		return fmt.Errorf("dlsload: %d completed breaker recovery cycles, want >= %d",
			rstats.BreakerCloses, *minCycles)
	}
	return nil
}

// poolEntry is one pre-marshalled request with the capture metadata the
// trace format carries (pool platform index, cost kind).
type poolEntry struct {
	body []byte
	pb   int
	kind string
}

// workload pre-marshals the request pool: chain-shaped strategies (the
// micro-batcher's best case), a broader mix including exhaustive searches
// and explicit scenarios, or a search-only pool of factorial-order
// requests whose solves are expensive enough to be solver-bound — the
// workload where window deduplication (thundering-herd collapse) shows up
// directly in throughput.
func workload(rng *rand.Rand, mix string, p, platforms int) ([]poolEntry, error) {
	var reqs []dls.Request
	var kinds []string
	var pbs []int
	add := func(pb int, kind string, req dls.Request) {
		reqs = append(reqs, req)
		kinds = append(kinds, kind)
		pbs = append(pbs, pb)
	}
	for i := 0; i < platforms; i++ {
		plat := dls.RandomSpeeds(rng, p, dls.Heterogeneous).Platform(dls.DefaultApp(100))
		switch mix {
		case "chain":
			add(i, "chain", dls.Request{Platform: plat, Strategy: dls.StrategyIncC, Load: 1000})
			add(i, "chain", dls.Request{Platform: plat, Strategy: dls.StrategyIncW})
			add(i, "chain", dls.Request{Platform: plat, Strategy: dls.StrategyDecC})
			add(i, "chain", dls.Request{Platform: plat, Strategy: dls.StrategyLIFO})
			add(i, "chain", dls.Request{Platform: plat, Strategy: dls.StrategyFIFOOrder, Send: plat.ByW()})
		case "mixed":
			send := plat.ByC()
			add(i, "chain", dls.Request{Platform: plat, Strategy: dls.StrategyIncC, Load: 1000})
			add(i, "chain", dls.Request{Platform: plat, Strategy: dls.StrategyLIFO})
			add(i, "chain", dls.Request{Platform: plat, Strategy: dls.StrategyFIFO})
			add(i, "search", dls.Request{Platform: plat, Strategy: dls.StrategyFIFOExhaustive})
			add(i, "chain", dls.Request{Platform: plat, Strategy: dls.StrategyScenario, Send: send, Return: send.Reverse()})
			add(i, "chain", dls.Request{Platform: plat, Strategy: dls.StrategyFIFO, Model: dls.TwoPort})
		case "search":
			add(i, "search", dls.Request{Platform: plat, Strategy: dls.StrategyFIFOExhaustive})
			add(i, "search", dls.Request{Platform: plat, Strategy: dls.StrategyLIFOExhaustive})
		default:
			return nil, fmt.Errorf("dlsload: unknown mix %q (chain | mixed | search)", mix)
		}
	}
	pool := make([]poolEntry, len(reqs))
	for i, req := range reqs {
		data, err := json.Marshal(req)
		if err != nil {
			return nil, err
		}
		pool[i] = poolEntry{body: data, pb: pbs[i], kind: kinds[i]}
	}
	return pool, nil
}

// writeCapture merges the per-worker arrival records into one
// time-ordered JSONL trace (the dlssim replay format).
func writeCapture(path string, captured [][]sim.TraceEvent) error {
	var all []sim.TraceEvent
	for _, evs := range captured {
		all = append(all, evs...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].TNanos < all[j].TNanos })
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := sim.WriteTrace(f, all); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// slowTraces merges the per-worker traced-response samples and keeps the
// slowest percentile: everything at or above the p99 latency, slowest
// first, capped at 16 entries so the report stays small.
func slowTraces(traced [][]SlowTrace, p99MS float64) []SlowTrace {
	var all []SlowTrace
	for _, ts := range traced {
		for _, t := range ts {
			if t.LatencyMS >= p99MS {
				all = append(all, t)
			}
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].LatencyMS > all[j].LatencyMS })
	if len(all) > 16 {
		all = all[:16]
	}
	return all
}

// percentile reads the q-quantile from ascending samples (nearest rank).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// scrapeFleet sums each replica's /metrics samples per key. Replicas
// that fail to answer (down, restarting) are skipped; only a fully dark
// fleet is an error, so a chaos blackout mid-scrape doesn't kill the
// run's bookkeeping.
func scrapeFleet(client *http.Client, replicas []string) (map[string]float64, error) {
	out := make(map[string]float64)
	reached := 0
	var lastErr error
	for _, base := range replicas {
		m, err := scrapeMetrics(client, base)
		if err != nil {
			lastErr = err
			continue
		}
		reached++
		for k, v := range m {
			out[k] += v
		}
	}
	if reached == 0 {
		return nil, fmt.Errorf("no replica answered /metrics: %w", lastErr)
	}
	return out, nil
}

// scrapeMetrics reads the untyped counter/gauge samples of a Prometheus
// text page into a map (histogram series are skipped).
func scrapeMetrics(client *http.Client, base string) (map[string]float64, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: status %d", resp.StatusCode)
	}
	out := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.Contains(line, "{") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		out[fields[0]] = v
	}
	return out, sc.Err()
}
