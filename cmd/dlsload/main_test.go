package main

import (
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/dls"
	"repro/internal/server"
)

func TestPercentile(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := percentile(s, 0.5); p != 5 {
		t.Errorf("p50 = %g, want 5", p)
	}
	if p := percentile(s, 1); p != 10 {
		t.Errorf("p100 = %g, want 10", p)
	}
	if p := percentile(nil, 0.5); p != 0 {
		t.Errorf("empty percentile = %g, want 0", p)
	}
}

func TestWorkloadPools(t *testing.T) {
	for _, mix := range []string{"chain", "mixed"} {
		pool, err := workload(rand.New(rand.NewSource(7)), mix, 5, 4)
		if err != nil {
			t.Fatalf("mix %s: %v", mix, err)
		}
		if len(pool) == 0 {
			t.Fatalf("mix %s: empty pool", mix)
		}
		// Every pre-marshalled request must decode back to a request the
		// engine accepts, and carry its capture metadata.
		for i, entry := range pool {
			var req dls.Request
			if err := json.Unmarshal(entry.body, &req); err != nil {
				t.Fatalf("mix %s: pool[%d] does not decode: %v", mix, i, err)
			}
			if req.Platform == nil || req.Strategy == "" {
				t.Fatalf("mix %s: pool[%d] incomplete: %s", mix, i, entry.body)
			}
			if entry.kind != "chain" && entry.kind != "search" {
				t.Fatalf("mix %s: pool[%d] kind %q", mix, i, entry.kind)
			}
			if entry.pb < 0 || entry.pb >= 4 {
				t.Fatalf("mix %s: pool[%d] platform index %d", mix, i, entry.pb)
			}
		}
	}
	if _, err := workload(rand.New(rand.NewSource(7)), "bogus", 5, 4); err == nil {
		t.Fatal("unknown mix accepted")
	}
}

// TestRunAgainstServer drives a real in-process dlsd for a short burst
// and checks the report, the error gates and the batching gate.
func TestRunAgainstServer(t *testing.T) {
	solver, err := dls.NewSolver(dls.WithCache(1024), dls.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Solver: solver, Window: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer func() {
		ts.Close()
		srv.Close()
	}()

	out := filepath.Join(t.TempDir(), "report.json")
	var buf strings.Builder
	err = run([]string{
		"-url", ts.URL,
		"-duration", "600ms",
		"-concurrency", "16",
		"-platforms", "8",
		"-mix", "chain",
		"-json", out,
		"-fail-on-error",
		"-min-batched-windows", "1",
	}, &buf)
	if err != nil {
		t.Fatalf("run failed: %v\noutput:\n%s", err, buf.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var report Report
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatal(err)
	}
	if report.Requests == 0 || report.RPS <= 0 {
		t.Errorf("empty report: %+v", report)
	}
	if report.Codes["200"] == 0 {
		t.Errorf("no 200s recorded: %+v", report.Codes)
	}
	if report.Server["dlsd_batched_windows_total"] == 0 {
		t.Errorf("no batched windows observed: %+v", report.Server)
	}
	if report.LatencyMS["p50"] <= 0 {
		t.Errorf("no latency percentiles: %+v", report.LatencyMS)
	}

	// The rps floor gate must fire when set absurdly high.
	err = run([]string{
		"-url", ts.URL, "-duration", "200ms", "-concurrency", "4",
		"-platforms", "2", "-min-rps", "1e12",
	}, &buf)
	if err == nil || !strings.Contains(err.Error(), "under the") {
		t.Errorf("min-rps gate did not fire: %v", err)
	}
}
