package main

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/dls"
	"repro/internal/server"
)

func TestPercentile(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := percentile(s, 0.5); p != 5 {
		t.Errorf("p50 = %g, want 5", p)
	}
	if p := percentile(s, 1); p != 10 {
		t.Errorf("p100 = %g, want 10", p)
	}
	if p := percentile(nil, 0.5); p != 0 {
		t.Errorf("empty percentile = %g, want 0", p)
	}
}

func TestWorkloadPools(t *testing.T) {
	for _, mix := range []string{"chain", "mixed"} {
		pool, err := workload(rand.New(rand.NewSource(7)), mix, 5, 4)
		if err != nil {
			t.Fatalf("mix %s: %v", mix, err)
		}
		if len(pool) == 0 {
			t.Fatalf("mix %s: empty pool", mix)
		}
		// Every pre-marshalled request must decode back to a request the
		// engine accepts, and carry its capture metadata.
		for i, entry := range pool {
			var req dls.Request
			if err := json.Unmarshal(entry.body, &req); err != nil {
				t.Fatalf("mix %s: pool[%d] does not decode: %v", mix, i, err)
			}
			if req.Platform == nil || req.Strategy == "" {
				t.Fatalf("mix %s: pool[%d] incomplete: %s", mix, i, entry.body)
			}
			if entry.kind != "chain" && entry.kind != "search" {
				t.Fatalf("mix %s: pool[%d] kind %q", mix, i, entry.kind)
			}
			if entry.pb < 0 || entry.pb >= 4 {
				t.Fatalf("mix %s: pool[%d] platform index %d", mix, i, entry.pb)
			}
		}
	}
	if _, err := workload(rand.New(rand.NewSource(7)), "bogus", 5, 4); err == nil {
		t.Fatal("unknown mix accepted")
	}
}

// TestRunAgainstServer drives a real in-process dlsd for a short burst
// and checks the report, the error gates and the batching gate.
func TestRunAgainstServer(t *testing.T) {
	solver, err := dls.NewSolver(dls.WithCache(1024), dls.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Solver: solver, Window: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer func() {
		ts.Close()
		srv.Close()
	}()

	out := filepath.Join(t.TempDir(), "report.json")
	var buf strings.Builder
	err = run([]string{
		"-url", ts.URL,
		"-duration", "600ms",
		"-concurrency", "16",
		"-platforms", "8",
		"-mix", "chain",
		"-json", out,
		"-fail-on-error",
		"-min-batched-windows", "1",
	}, &buf)
	if err != nil {
		t.Fatalf("run failed: %v\noutput:\n%s", err, buf.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var report Report
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatal(err)
	}
	if report.Requests == 0 || report.RPS <= 0 {
		t.Errorf("empty report: %+v", report)
	}
	if report.Codes["200"] == 0 {
		t.Errorf("no 200s recorded: %+v", report.Codes)
	}
	if report.Server["dlsd_batched_windows_total"] == 0 {
		t.Errorf("no batched windows observed: %+v", report.Server)
	}
	if report.LatencyMS["p50"] <= 0 {
		t.Errorf("no latency percentiles: %+v", report.LatencyMS)
	}

	// The rps floor gate must fire when set absurdly high.
	err = run([]string{
		"-url", ts.URL, "-duration", "200ms", "-concurrency", "4",
		"-platforms", "2", "-min-rps", "1e12",
	}, &buf)
	if err == nil || !strings.Contains(err.Error(), "under the") {
		t.Errorf("min-rps gate did not fire: %v", err)
	}
}

// chaosReplica is a fake dlsd replica with a pluggable /v1/solve handler
// and an empty /metrics page, so run()'s scrapes succeed.
func chaosReplica(t *testing.T, solve http.HandlerFunc) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {})
	mux.HandleFunc("/v1/solve", solve)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// TestRunRetriesAcrossFleet: with one replica answering 500 and one
// healthy, retries route every request to success — availability 1.0
// even though half the first attempts land on the broken replica.
func TestRunRetriesAcrossFleet(t *testing.T) {
	bad := chaosReplica(t, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	good := chaosReplica(t, func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("{}")) //nolint:errcheck
	})

	out := filepath.Join(t.TempDir(), "report.json")
	var buf strings.Builder
	err := run([]string{
		"-url", bad.URL + "," + good.URL,
		"-duration", "400ms",
		"-concurrency", "4",
		"-platforms", "2",
		"-retries", "3",
		"-min-availability", "0.999",
		"-json", out,
	}, &buf)
	if err != nil {
		t.Fatalf("run failed: %v\noutput:\n%s", err, buf.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var report Report
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatal(err)
	}
	if report.OK == 0 || report.OK != report.Requests {
		t.Errorf("ok = %d of %d requests, want all", report.OK, report.Requests)
	}
	if report.Failed != 0 || report.Availability != 1 {
		t.Errorf("failed = %d, availability = %g, want 0 and 1", report.Failed, report.Availability)
	}
	if report.Resilience == nil || report.Resilience.Retries == 0 {
		t.Errorf("no retries recorded despite a dead replica: %+v", report.Resilience)
	}
	if len(report.Replicas) != 2 {
		t.Errorf("replicas = %v, want both", report.Replicas)
	}
}

// TestRunClassifiesInjectedAndShed: chaos-marked failures count as
// injected (not failed) and final 429s count as shed — neither touches
// availability's denominator.
func TestRunClassifiesInjectedAndShed(t *testing.T) {
	var n atomic.Uint64
	ts := chaosReplica(t, func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1)%2 == 0 {
			w.Header().Set(server.ChaosHeader, "error")
			http.Error(w, "injected", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Retry-After", "1")
		http.Error(w, "shed", http.StatusTooManyRequests)
	})

	out := filepath.Join(t.TempDir(), "report.json")
	var buf strings.Builder
	err := run([]string{
		"-url", ts.URL,
		"-duration", "300ms",
		"-concurrency", "4",
		"-platforms", "2",
		"-retries", "-1", // disable retries: classify the raw responses
		"-json", out,
	}, &buf)
	if err != nil {
		t.Fatalf("run failed: %v\noutput:\n%s", err, buf.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var report Report
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatal(err)
	}
	if report.Injected == 0 || report.Shed == 0 {
		t.Errorf("injected = %d, shed = %d, want both > 0", report.Injected, report.Shed)
	}
	if report.Failed != 0 || report.OK != 0 {
		t.Errorf("failed = %d, ok = %d, want 0 and 0", report.Failed, report.OK)
	}
	if got := report.Injected + report.Shed; got != report.Requests {
		t.Errorf("injected + shed = %d, want all %d requests", got, report.Requests)
	}
}

// TestRunBreakerCycle: a replica that fails its first requests and then
// recovers drives the breaker through a full open -> half-open -> close
// cycle, which -min-breaker-cycles certifies.
func TestRunBreakerCycle(t *testing.T) {
	var n atomic.Uint64
	ts := chaosReplica(t, func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1) <= 5 {
			http.Error(w, "warming up", http.StatusInternalServerError)
			return
		}
		w.Write([]byte("{}")) //nolint:errcheck
	})

	var buf strings.Builder
	err := run([]string{
		"-url", ts.URL,
		"-duration", "500ms",
		"-concurrency", "2",
		"-platforms", "2",
		"-breaker-threshold", "5",
		"-breaker-cooldown", "20ms",
		"-min-breaker-cycles", "1",
	}, &buf)
	if err != nil {
		t.Fatalf("no breaker recovery cycle observed: %v\noutput:\n%s", err, buf.String())
	}
}

// TestRunResilienceGatesFire: the availability and breaker-cycle floors
// must fail the run when unmet.
func TestRunResilienceGatesFire(t *testing.T) {
	down := chaosReplica(t, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	var buf strings.Builder
	err := run([]string{
		"-url", down.URL, "-duration", "200ms", "-concurrency", "2",
		"-platforms", "2", "-retries", "-1", "-min-availability", "0.5",
	}, &buf)
	if err == nil || !strings.Contains(err.Error(), "availability") {
		t.Errorf("availability gate did not fire: %v", err)
	}

	healthy := chaosReplica(t, func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("{}")) //nolint:errcheck
	})
	err = run([]string{
		"-url", healthy.URL, "-duration", "200ms", "-concurrency", "2",
		"-platforms", "2", "-min-breaker-cycles", "1",
	}, &buf)
	if err == nil || !strings.Contains(err.Error(), "breaker recovery cycles") {
		t.Errorf("breaker-cycle gate did not fire: %v", err)
	}
}
