// Command dlssim runs the discrete-event traffic simulator: named
// arrival scenarios replayed in virtual time through the real
// dls.Batcher (synchronous mode, injected virtual clock), with service
// time drawn from a calibrated cost model instead of running the LP
// solver. Millions of virtual arrivals take seconds of wall clock, and a
// fixed seed makes the event log and report byte-identical across runs —
// which is what lets CI gate on simulated tail latency.
//
// The -compare mode runs the same seeded scenario twice — fixed window
// vs adaptive SLO-aware admission — and enforces the PR 6 gates: the
// adaptive policy must beat the fixed window's P99 for the gate class at
// an equal-or-lower shed rate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/dls"
	"repro/internal/sim"
)

func main() {
	var (
		scenario   = flag.String("scenario", "burst", "traffic scenario (see -list)")
		list       = flag.Bool("list", false, "list scenarios and exit")
		seed       = flag.Int64("seed", 1, "random seed (fixes the whole run)")
		arrivals   = flag.Int("arrivals", 200000, "max virtual arrivals (0: unbounded, -duration governs)")
		duration   = flag.Duration("duration", 0, "virtual-time horizon (0: -arrivals governs)")
		window     = flag.Duration("window", 2*time.Millisecond, "admission window (fixed mode / adaptive base)")
		windowSize = flag.Int("window-size", 64, "base window size")
		queue      = flag.Int("queue", 1024, "admission queue cap")
		drain      = flag.Int("drain", 2, "concurrent window services")
		adaptive   = flag.Bool("adaptive", false, "adaptive SLO-aware admission instead of the fixed window")
		classes    = flag.String("classes", "", "SLO classes as name=deadline:priority,... (default: tight/standard/batch)")
		platforms  = flag.Int("platforms", 32, "hot problem-pool size (distinct platforms)")
		p          = flag.Int("p", 6, "workers per generated platform")
		searchMix  = flag.Float64("search-share", 0.1, "fraction of search-kind (expensive) arrivals")
		zipfS      = flag.Float64("zipf", 1.1, "platform popularity skew (<=1: uniform)")
		calibrate  = flag.String("calibrate", "", "cost-model calibration JSON (default: built-in)")
		failures   = flag.String("failures", "", "injected replica crashes as at:down,... (e.g. 3s:500ms,10s:1s)")
		traceFile  = flag.String("trace", "", "JSONL arrival trace for -scenario trace")
		jsonOut    = flag.String("json", "", "write the report (or comparison) JSON here")
		logOut     = flag.String("log", "", "write the JSONL event log here")
		compare    = flag.Bool("compare", false, "run fixed AND adaptive on the same seed; gate adaptive vs fixed")
		gateClass  = flag.String("gate-class", "tight", "SLO class the -compare gates apply to")
		maxP99     = flag.Float64("max-p99", 0, "gate: adaptive P99 of the gate class must stay under this (ms; 0: off)")
		minImprove = flag.Float64("min-improvement", 0, "gate: adaptive must beat fixed P99 by at least this fraction")
	)
	flag.Parse()

	if *list {
		for _, name := range sim.Scenarios() {
			sc, _ := sim.ScenarioByName(name)
			fmt.Printf("%-10s %s\n", sc.Name, sc.Describe)
		}
		return
	}

	sc, err := sim.ScenarioByName(*scenario)
	if err != nil {
		fatal(err)
	}
	proc, err := sc.Build(*traceFile)
	if err != nil {
		fatal(err)
	}

	cost := sim.DefaultCostModel()
	if *calibrate != "" {
		if cost, err = sim.LoadCostModel(*calibrate); err != nil {
			fatal(err)
		}
	}

	var sloClasses []dls.SLOClass
	if *classes != "" {
		if sloClasses, err = dls.ParseSLOClasses(*classes); err != nil {
			fatal(err)
		}
	}

	crashPlan, err := sim.ParseFailures(*failures)
	if err != nil {
		fatal(err)
	}

	cfg := sim.Config{
		Seed:        *seed,
		Horizon:     *duration,
		MaxArrivals: *arrivals,
		Process:     proc,
		Classes:     sloClasses,
		Platforms:   *platforms,
		P:           *p,
		SearchShare: *searchMix,
		ZipfS:       *zipfS,
		Cost:        cost,
		Window:      *window,
		WindowSize:  *windowSize,
		QueueCap:    *queue,
		Drain:       *drain,
		Failures:    crashPlan,
	}
	if *adaptive {
		cfg.Adaptive = &dls.AdaptiveConfig{}
	}

	if *compare {
		runCompare(cfg, sc, *traceFile, *gateClass, *maxP99, *minImprove, *jsonOut)
		return
	}

	if *logOut != "" {
		f, err := os.Create(*logOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		cfg.Log = f
	}

	rep, err := runOnce(cfg, sc)
	if err != nil {
		fatal(err)
	}
	printSummary(rep)
	writeJSON(*jsonOut, rep)
}

// runOnce executes one simulation; Process state is consumed, so the
// scenario rebuilds it for every run (compare mode runs twice).
func runOnce(cfg sim.Config, sc sim.Scenario) (*sim.Report, error) {
	rep, err := sim.Run(cfg)
	if err != nil {
		return nil, err
	}
	rep.Scenario = sc.Name
	return rep, nil
}

// Comparison is the -compare output: both runs plus the gate verdicts.
type Comparison struct {
	Scenario  string      `json:"scenario"`
	Seed      int64       `json:"seed"`
	GateClass string      `json:"gate_class"`
	Fixed     *sim.Report `json:"fixed"`
	Adaptive  *sim.Report `json:"adaptive"`
	// P99ImprovementFraction is (fixed P99 - adaptive P99) / fixed P99
	// for the gate class.
	P99ImprovementFraction float64 `json:"p99_improvement_fraction"`
	// ShedRate* are overall (all classes): SLO-aware shedding
	// concentrates drops on the deadline class instead of shedding every
	// class blindly at queue-full, so per-class shed alone would reward
	// the blind policy.
	ShedRateFixed    float64 `json:"shed_rate_fixed"`
	ShedRateAdaptive float64 `json:"shed_rate_adaptive"`
	// BadRate* are the gate class's (shed + violations) / arrivals — a
	// request shed up front and a request served past its deadline are
	// both SLO failures.
	BadRateFixed    float64  `json:"bad_rate_fixed"`
	BadRateAdaptive float64  `json:"bad_rate_adaptive"`
	Pass            bool     `json:"pass"`
	Failures        []string `json:"failures,omitempty"`
}

func badRate(c *sim.ClassReport) float64 {
	if c.Arrivals == 0 {
		return 0
	}
	return float64(c.Shed+c.Violations) / float64(c.Arrivals)
}

func overallShedRate(r *sim.Report) float64 {
	if r.Arrivals == 0 {
		return 0
	}
	return float64(r.Shed) / float64(r.Arrivals)
}

func runCompare(cfg sim.Config, sc sim.Scenario, tracePath, gateClass string, maxP99, minImprove float64, jsonOut string) {
	fixed := cfg
	fixed.Adaptive = nil
	fixed.Process = rebuild(sc, tracePath)
	fixedRep, err := runOnce(fixed, sc)
	if err != nil {
		fatal(err)
	}
	adap := cfg
	adap.Adaptive = &dls.AdaptiveConfig{}
	adap.Process = rebuild(sc, tracePath)
	adapRep, err := runOnce(adap, sc)
	if err != nil {
		fatal(err)
	}

	cmp := &Comparison{
		Scenario:  sc.Name,
		Seed:      cfg.Seed,
		GateClass: gateClass,
		Fixed:     fixedRep,
		Adaptive:  adapRep,
	}
	fc, fok := fixedRep.Classes[gateClass]
	ac, aok := adapRep.Classes[gateClass]
	if !fok || !aok {
		cmp.Failures = append(cmp.Failures, fmt.Sprintf("gate class %q missing from reports", gateClass))
	} else {
		cmp.ShedRateFixed = overallShedRate(fixedRep)
		cmp.ShedRateAdaptive = overallShedRate(adapRep)
		cmp.BadRateFixed = badRate(fc)
		cmp.BadRateAdaptive = badRate(ac)
		if fc.P99MS > 0 {
			cmp.P99ImprovementFraction = (fc.P99MS - ac.P99MS) / fc.P99MS
		}
		if maxP99 > 0 && ac.P99MS > maxP99 {
			cmp.Failures = append(cmp.Failures,
				fmt.Sprintf("adaptive %s P99 %.3fms exceeds gate %.3fms", gateClass, ac.P99MS, maxP99))
		}
		if cmp.P99ImprovementFraction < minImprove {
			cmp.Failures = append(cmp.Failures,
				fmt.Sprintf("adaptive improves %s P99 by %.1f%%, below the %.1f%% gate",
					gateClass, 100*cmp.P99ImprovementFraction, 100*minImprove))
		}
		if cmp.ShedRateAdaptive > cmp.ShedRateFixed {
			cmp.Failures = append(cmp.Failures,
				fmt.Sprintf("adaptive sheds %.4f overall, above fixed %.4f", cmp.ShedRateAdaptive, cmp.ShedRateFixed))
		}
		if cmp.BadRateAdaptive > cmp.BadRateFixed {
			cmp.Failures = append(cmp.Failures,
				fmt.Sprintf("adaptive %s shed+violation rate %.4f, above fixed %.4f",
					gateClass, cmp.BadRateAdaptive, cmp.BadRateFixed))
		}
	}
	cmp.Pass = len(cmp.Failures) == 0

	fmt.Printf("scenario=%s seed=%d gate=%s\n", cmp.Scenario, cmp.Seed, gateClass)
	if fok && aok {
		fmt.Printf("  fixed:    P99 %8.3fms  shed %.4f  bad %.4f  windows %d (fill %.1f, collapse %.2f)\n",
			fc.P99MS, cmp.ShedRateFixed, cmp.BadRateFixed, fixedRep.Windows, fixedRep.AvgWindowFill, fixedRep.CollapseRatio)
		fmt.Printf("  adaptive: P99 %8.3fms  shed %.4f  bad %.4f  windows %d (fill %.1f, collapse %.2f)\n",
			ac.P99MS, cmp.ShedRateAdaptive, cmp.BadRateAdaptive, adapRep.Windows, adapRep.AvgWindowFill, adapRep.CollapseRatio)
		fmt.Printf("  improvement %.1f%%  wall %.2fs+%.2fs\n",
			100*cmp.P99ImprovementFraction, fixedRep.WallSeconds, adapRep.WallSeconds)
	}
	for _, f := range cmp.Failures {
		fmt.Printf("  GATE FAIL: %s\n", f)
	}
	writeJSON(jsonOut, cmp)
	if !cmp.Pass {
		os.Exit(1)
	}
}

func rebuild(sc sim.Scenario, tracePath string) sim.Process {
	proc, err := sc.Build(tracePath)
	if err != nil {
		fatal(err)
	}
	return proc
}

func printSummary(rep *sim.Report) {
	fmt.Printf("scenario=%s seed=%d mode=%s\n", rep.Scenario, rep.Seed, rep.Mode)
	fmt.Printf("  %d arrivals over %.2f virtual s (%d events, %.2fs wall)\n",
		rep.Arrivals, rep.VirtualSeconds, rep.Events, rep.WallSeconds)
	fmt.Printf("  completed %d, shed %d (%d SLO), violations %d\n",
		rep.Completed, rep.Shed, rep.ShedSLO, rep.Violations)
	if rep.Crashes > 0 {
		fmt.Printf("  crashes %d: %d in-flight failed, %d arrivals lost\n",
			rep.Crashes, rep.CrashFailed, rep.CrashLost)
	}
	fmt.Printf("  windows %d, fill %.1f, collapse %.2f\n",
		rep.Windows, rep.AvgWindowFill, rep.CollapseRatio)
	for _, name := range sortedClassNames(rep) {
		c := rep.Classes[name]
		fmt.Printf("  %-10s arr %8d  done %8d  shed %6d  p50 %8.3fms  p99 %8.3fms\n",
			name, c.Arrivals, c.Completed, c.Shed, c.P50MS, c.P99MS)
	}
}

func sortedClassNames(rep *sim.Report) []string {
	names := make([]string, 0, len(rep.Classes))
	for name := range rep.Classes {
		names = append(names, name)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

func writeJSON(path string, v any) {
	if path == "" {
		return
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dlssim:", err)
	os.Exit(1)
}
