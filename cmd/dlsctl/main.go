// Command dlsctl supervises a local fleet of dlsd replicas: it spawns
// one process per slot on consecutive ports, probes /healthz, restarts
// crashes with jittered exponential backoff (giving up on crash loops),
// performs rolling restarts on SIGHUP, and drains the whole fleet
// gracefully on SIGINT/SIGTERM.
//
//	dlsctl -replicas 3 -base-port 8080 -dlsd ./dlsd -- -window 2ms -cache 4096
//
// Flags after "--" are passed through to every dlsd replica (dlsctl
// appends -addr itself). The optional -status-addr serves the fleet
// control plane: GET /fleet returns per-replica JSON status and GET
// /healthz answers 200 only while every slot is healthy.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/resilience"
	"repro/internal/supervisor"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		slog.Error("dlsctl exiting", "error", err)
		os.Exit(1)
	}
}

// splitArgs separates dlsctl's own flags from the dlsd passthrough
// arguments at the first "--".
func splitArgs(args []string) (own, passthrough []string) {
	for i, a := range args {
		if a == "--" {
			return args[:i], args[i+1:]
		}
	}
	return args, nil
}

// fleetView is the slice of Supervisor the status endpoints need.
type fleetView interface {
	Snapshot() []supervisor.ReplicaStatus
	HealthyCount() int
}

// statusHandler serves the dlsctl control plane: /fleet (JSON status)
// and /healthz (200 iff the whole fleet is healthy).
func statusHandler(sup fleetView, replicas int) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/fleet", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		snap := sup.Snapshot()
		healthy := sup.HealthyCount()
		_ = json.NewEncoder(w).Encode(struct {
			Replicas int                        `json:"replicas"`
			Healthy  int                        `json:"healthy"`
			Fleet    []supervisor.ReplicaStatus `json:"fleet"`
		}{Replicas: replicas, Healthy: healthy, Fleet: snap})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if sup.HealthyCount() == replicas {
			w.WriteHeader(http.StatusOK)
			fmt.Fprintln(w, "ok")
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "%d/%d healthy\n", sup.HealthyCount(), replicas)
	})
	return mux
}

func run(args []string, out io.Writer) error {
	own, passthrough := splitArgs(args)
	fs := flag.NewFlagSet("dlsctl", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		replicas       = fs.Int("replicas", 3, "fleet size")
		basePort       = fs.Int("base-port", 8080, "first data port; slot i serves on base-port+i (alternates above)")
		host           = fs.String("host", "127.0.0.1", "host the replicas bind and are probed on")
		dlsdBin        = fs.String("dlsd", "dlsd", "dlsd binary to launch")
		statusAddr     = fs.String("status-addr", "", "control-plane listen address for /fleet and /healthz; empty disables")
		probeInterval  = fs.Duration("probe-interval", 500*time.Millisecond, "health-check period")
		probeTimeout   = fs.Duration("probe-timeout", 2*time.Second, "per-probe timeout")
		startupTimeout = fs.Duration("startup-timeout", 15*time.Second, "budget for a fresh replica's first healthy probe")
		unhealthyAfter = fs.Int("unhealthy-after", 3, "consecutive probe failures before a replica is restarted")
		backoffBase    = fs.Duration("backoff-base", 200*time.Millisecond, "restart backoff base (doubles per consecutive failure)")
		backoffMax     = fs.Duration("backoff-max", 10*time.Second, "restart backoff cap")
		crashWindow    = fs.Duration("crash-loop-window", time.Minute, "window for crash-loop detection")
		crashMax       = fs.Int("crash-loop-max", 5, "rapid failures within the window before a slot is given up")
		drainTimeout   = fs.Duration("drain", 10*time.Second, "SIGTERM-to-SIGKILL budget per replica")
		seed           = fs.Int64("seed", 0, "backoff-jitter seed")
		runFor         = fs.Duration("run-for", 0, "exit cleanly after this long (0: run until signalled)")
		logFormat      = fs.String("log-format", "text", "log format: text (raw [slot-N:port] replica capture) or json (replica lines become records with slot/port attrs)")
	)
	if err := fs.Parse(own); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("dlsctl: unexpected argument %q (dlsd flags go after --)", fs.Arg(0))
	}

	var logger *slog.Logger
	var starter supervisor.Starter
	switch *logFormat {
	case "json":
		logger = slog.New(slog.NewJSONHandler(out, nil))
		// JSON mode: replica output lines become structured records with
		// slot/port attrs instead of the raw "[slot-N:port] " prefix.
		starter = supervisor.ExecStarterLog(*dlsdBin, passthrough, *host, logger.With("source", "replica"))
	case "text":
		logger = slog.New(slog.NewTextHandler(out, nil))
		starter = supervisor.ExecStarter(*dlsdBin, passthrough, *host, out)
	default:
		return fmt.Errorf("dlsctl: invalid -log-format %q: want json or text", *logFormat)
	}
	probeClient := &http.Client{Timeout: *probeTimeout}
	cfg := supervisor.Config{
		Replicas: *replicas,
		BasePort: *basePort,
		Host:     *host,
		Start:    starter,
		Probe: func(ctx context.Context, addr string) error {
			return resilience.CheckHealth(ctx, probeClient, "http://"+addr, "/healthz")
		},
		ProbeInterval:   *probeInterval,
		ProbeTimeout:    *probeTimeout,
		StartupTimeout:  *startupTimeout,
		UnhealthyAfter:  *unhealthyAfter,
		BackoffBase:     *backoffBase,
		BackoffMax:      *backoffMax,
		Seed:            *seed,
		CrashLoopWindow: *crashWindow,
		CrashLoopMax:    *crashMax,
		DrainTimeout:    *drainTimeout,
		OnEvent: func(ev supervisor.Event) {
			switch ev.Kind {
			case supervisor.EventProbeFailed:
				// Too chatty for steady-state logs; failures that matter
				// escalate to unhealthy.
			case supervisor.EventBackingOff:
				logger.Info(ev.Kind.String(), "slot", ev.Slot, "addr", ev.Addr, "delay", ev.Delay.Round(time.Millisecond))
			default:
				if ev.Err != nil {
					logger.Warn(ev.Kind.String(), "slot", ev.Slot, "addr", ev.Addr, "error", ev.Err)
				} else {
					logger.Info(ev.Kind.String(), "slot", ev.Slot, "addr", ev.Addr)
				}
			}
		},
	}
	sup, err := supervisor.New(cfg)
	if err != nil {
		return err
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var statusSrv *http.Server
	if *statusAddr != "" {
		statusSrv = &http.Server{
			Addr:              *statusAddr,
			Handler:           statusHandler(sup, *replicas),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			logger.Info("control plane listening", "addr", *statusAddr)
			if err := statusSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Warn("control plane", "error", err)
			}
		}()
	}

	// SIGINT/SIGTERM drain the fleet; SIGHUP triggers a rolling restart.
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP)
	defer signal.Stop(sig)
	go func() {
		var timeout <-chan time.Time
		if *runFor > 0 {
			timeout = time.After(*runFor)
		}
		for {
			select {
			case s := <-sig:
				if s == syscall.SIGHUP {
					logger.Info("rolling restart", "signal", "SIGHUP")
					go func() {
						if err := sup.RollingRestart(ctx); err != nil {
							logger.Warn("rolling restart failed", "error", err)
						} else {
							logger.Info("rolling restart complete")
						}
					}()
					continue
				}
				logger.Info("draining fleet", "signal", s.String())
				cancel()
				return
			case <-timeout:
				logger.Info("draining fleet", "run_for", *runFor)
				cancel()
				return
			case <-ctx.Done():
				return
			}
		}
	}()

	logger.Info("supervising fleet",
		"replicas", *replicas, "dlsd", *dlsdBin, "host", *host,
		"first_port", *basePort, "last_port", *basePort+*replicas-1)
	err = sup.Run(ctx)
	if statusSrv != nil {
		sctx, scancel := context.WithTimeout(context.Background(), time.Second)
		defer scancel()
		_ = statusSrv.Shutdown(sctx)
	}
	if err != nil {
		return fmt.Errorf("dlsctl: %w", err)
	}
	logger.Info("fleet drained")
	return nil
}
