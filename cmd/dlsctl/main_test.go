package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/supervisor"
)

// TestMain doubles as a fake dlsd: when dlsctl's ExecStarter launches
// the test binary with DLSCTL_FAKE_DLSD=1, we serve /healthz on the
// -addr dlsctl appended and drain on SIGTERM, instead of running tests.
func TestMain(m *testing.M) {
	if os.Getenv("DLSCTL_FAKE_DLSD") == "1" {
		fakeDlsd()
		return
	}
	os.Exit(m.Run())
}

func fakeDlsd() {
	fs := flag.NewFlagSet("fake-dlsd", flag.ExitOnError)
	addr := fs.String("addr", "", "listen address")
	crash := fs.Bool("fake-crash", false, "exit 1 immediately (exercises restart)")
	_ = fs.Parse(os.Args[1:])
	if *crash {
		fmt.Println("fake dlsd: crashing")
		os.Exit(1)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	srv := &http.Server{Addr: *addr, Handler: mux}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGTERM)
		<-sig
		_ = srv.Close()
	}()
	fmt.Printf("fake dlsd: listening on %s\n", *addr)
	_ = srv.ListenAndServe()
}

// syncBuffer makes the shared test log safe for the concurrent writers
// run wires into it (event logger + replica output copiers).
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestSplitArgs(t *testing.T) {
	cases := []struct {
		in        []string
		own, pass []string
	}{
		{in: []string{"-replicas", "3"}, own: []string{"-replicas", "3"}, pass: nil},
		{in: []string{"-replicas", "3", "--", "-cache", "0"}, own: []string{"-replicas", "3"}, pass: []string{"-cache", "0"}},
		{in: []string{"--"}, own: []string{}, pass: []string{}},
		{in: nil, own: nil, pass: nil},
	}
	for _, c := range cases {
		own, pass := splitArgs(c.in)
		if !sameStrings(own, c.own) || !sameStrings(pass, c.pass) {
			t.Errorf("splitArgs(%v) = %v, %v; want %v, %v", c.in, own, pass, c.own, c.pass)
		}
	}
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRunRejectsBadArgs(t *testing.T) {
	var buf syncBuffer
	if err := run([]string{"-no-such-flag"}, &buf); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"stray"}, &buf); err == nil || !strings.Contains(err.Error(), "dlsd flags go after --") {
		t.Errorf("stray positional: err = %v, want hint about --", err)
	}
	if err := run([]string{"-replicas", "0", "-run-for", "1ms"}, &buf); err == nil {
		t.Error("zero replicas accepted")
	}
}

// stubFleet implements fleetView for status-endpoint tests.
type stubFleet struct {
	snap    []supervisor.ReplicaStatus
	healthy int
}

func (s *stubFleet) Snapshot() []supervisor.ReplicaStatus { return s.snap }
func (s *stubFleet) HealthyCount() int                    { return s.healthy }

func TestStatusHandler(t *testing.T) {
	fleet := &stubFleet{
		snap: []supervisor.ReplicaStatus{
			{Slot: 0, Addr: "127.0.0.1:8080", State: "healthy", Restarts: 1},
			{Slot: 1, Addr: "127.0.0.1:8081", State: "backoff", LastErr: "crash"},
		},
		healthy: 1,
	}
	h := statusHandler(fleet, 2)

	rec := newRecorder()
	h.ServeHTTP(rec, mustReq(t, "/fleet"))
	var got struct {
		Replicas int                        `json:"replicas"`
		Healthy  int                        `json:"healthy"`
		Fleet    []supervisor.ReplicaStatus `json:"fleet"`
	}
	if err := json.Unmarshal(rec.body.Bytes(), &got); err != nil {
		t.Fatalf("decode /fleet: %v (%s)", err, rec.body.String())
	}
	if got.Replicas != 2 || got.Healthy != 1 || !reflect.DeepEqual(got.Fleet, fleet.snap) {
		t.Errorf("/fleet = %+v, want snapshot passthrough", got)
	}

	rec = newRecorder()
	h.ServeHTTP(rec, mustReq(t, "/healthz"))
	if rec.code != http.StatusServiceUnavailable {
		t.Errorf("/healthz with 1/2 healthy = %d, want 503", rec.code)
	}
	fleet.healthy = 2
	rec = newRecorder()
	h.ServeHTTP(rec, mustReq(t, "/healthz"))
	if rec.code != http.StatusOK {
		t.Errorf("/healthz with 2/2 healthy = %d, want 200", rec.code)
	}
}

type recorder struct {
	code   int
	header http.Header
	body   bytes.Buffer
}

func newRecorder() *recorder             { return &recorder{code: http.StatusOK, header: http.Header{}} }
func (r *recorder) Header() http.Header  { return r.header }
func (r *recorder) WriteHeader(code int) { r.code = code }
func (r *recorder) Write(p []byte) (int, error) {
	return r.body.Write(p)
}

func mustReq(t *testing.T, path string) *http.Request {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, path, nil)
	if err != nil {
		t.Fatal(err)
	}
	return req
}

// freePortPair finds a base port p with p and p+1 both bindable (slot
// 0's data port and its rolling-restart alternate).
func freePortPair(t *testing.T) int {
	t.Helper()
	for attempt := 0; attempt < 20; attempt++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		p := l.Addr().(*net.TCPAddr).Port
		l2, err := net.Listen("tcp", "127.0.0.1:"+strconv.Itoa(p+1))
		l.Close()
		if err != nil {
			continue
		}
		l2.Close()
		return p
	}
	t.Fatal("no free port pair found")
	return 0
}

// TestRunSupervisesFakeFleet exercises the full dlsctl path end to end:
// the test binary is re-executed as a fake dlsd (see TestMain), dlsctl
// probes it healthy, serves its control plane, and drains on -run-for.
func TestRunSupervisesFakeFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	t.Setenv("DLSCTL_FAKE_DLSD", "1") // inherited by the child only; tests already run
	basePort := freePortPair(t)
	statusPort := freePortPair(t)
	statusAddr := "127.0.0.1:" + strconv.Itoa(statusPort)

	var buf syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-replicas", "1",
			"-base-port", strconv.Itoa(basePort),
			"-dlsd", exe,
			"-status-addr", statusAddr,
			"-probe-interval", "20ms",
			"-startup-timeout", "5s",
			"-run-for", "1500ms",
		}, &buf)
	}()

	// The control plane must report the slot healthy well within run-for.
	deadline := time.Now().Add(5 * time.Second)
	healthy := false
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + statusAddr + "/healthz")
		if err == nil {
			ok := resp.StatusCode == http.StatusOK
			resp.Body.Close()
			if ok {
				healthy = true
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !healthy {
		t.Fatalf("fleet never became healthy; log:\n%s", buf.String())
	}

	resp, err := http.Get("http://" + statusAddr + "/fleet")
	if err != nil {
		t.Fatal(err)
	}
	var fleet struct {
		Replicas int                        `json:"replicas"`
		Healthy  int                        `json:"healthy"`
		Fleet    []supervisor.ReplicaStatus `json:"fleet"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&fleet); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if fleet.Replicas != 1 || fleet.Healthy != 1 || len(fleet.Fleet) != 1 {
		t.Fatalf("/fleet = %+v, want one healthy replica", fleet)
	}
	wantAddr := "127.0.0.1:" + strconv.Itoa(basePort)
	if fleet.Fleet[0].Addr != wantAddr || fleet.Fleet[0].State != "healthy" {
		t.Fatalf("replica status = %+v, want healthy on %s", fleet.Fleet[0], wantAddr)
	}

	// run-for elapses; the fleet drains via SIGTERM and run returns nil.
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v\nlog:\n%s", err, buf.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("run did not return after run-for; log:\n%s", buf.String())
	}
	log := buf.String()
	if !strings.Contains(log, "fleet drained") {
		t.Errorf("log missing drain confirmation:\n%s", log)
	}
	// Replica output is captured with the slot prefix.
	if !strings.Contains(log, "[slot-0:"+strconv.Itoa(basePort)+"] fake dlsd: listening") {
		t.Errorf("log missing prefixed replica output:\n%s", log)
	}
}

// TestRunGivesUpOnCrashLoop points dlsctl at a binary that exits
// immediately: crash-loop detection must retire the slot and surface an
// error.
func TestRunGivesUpOnCrashLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	t.Setenv("DLSCTL_FAKE_DLSD", "1")
	basePort := freePortPair(t)

	var buf syncBuffer
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{
			"-replicas", "1",
			"-base-port", strconv.Itoa(basePort),
			"-dlsd", exe,
			"-probe-interval", "10ms",
			"-backoff-base", "10ms",
			"-backoff-max", "20ms",
			"-crash-loop-max", "3",
			"-run-for", "30s", // give-up should end the run long before this
			"--", "-fake-crash",
		}, &buf)
	}()
	select {
	case err := <-errc:
		if err == nil || !strings.Contains(err.Error(), "gave up") {
			t.Fatalf("run = %v, want crash-loop give-up error\nlog:\n%s", err, buf.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("run did not give up on a crash-looping binary; log:\n%s", buf.String())
	}
}
