// Root benchmark harness: one benchmark per table/figure of the paper's
// evaluation (Section 5) plus the two theorem-level benchmarks, as indexed
// in DESIGN.md. Each figure benchmark executes the same protocol as
// cmd/dlsexp with a reduced sweep so a full -bench=. run stays in seconds;
// the emitted metric is the figure's headline number, making regressions in
// the reproduced *shape* visible in benchmark diffs.
package repro

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/dls"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/eval/kern"
	"repro/internal/experiments"
	"repro/internal/platform"
	"repro/internal/schedule"
)

// benchConfig is the reduced sweep shared by the figure benchmarks.
func benchConfig() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.Platforms = 5
	cfg.Sizes = []int{40, 120, 200}
	cfg.M = 500
	return cfg
}

func runFigure(b *testing.B, id string, metric func(*experiments.Result) float64, unit string) {
	b.Helper()
	cfg := benchConfig()
	runner := experiments.Registry()[id]
	if runner == nil {
		b.Fatalf("unknown figure %q", id)
	}
	var last float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := runner(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if metric != nil {
			last = metric(res)
		}
	}
	if metric != nil {
		b.ReportMetric(last, unit)
	}
}

// lastOf returns the final value of the named series (the largest matrix
// size), the headline point of the sweep figures.
func lastOf(name string) func(*experiments.Result) float64 {
	return func(r *experiments.Result) float64 {
		for _, s := range r.Series {
			if s.Name == name && len(s.Y) > 0 {
				return s.Y[len(s.Y)-1]
			}
		}
		return 0
	}
}

// BenchmarkFig08Linearity reproduces Figure 8 (linearity test); the metric
// is the measured slope ratio between the speed-1 and speed-5 workers
// (expected 5.0 under the linear model).
func BenchmarkFig08Linearity(b *testing.B) {
	runFigure(b, "8", func(r *experiments.Result) float64 {
		slow := r.Series[0].Y[len(r.Series[0].Y)-1]
		fast := r.Series[4].Y[len(r.Series[4].Y)-1]
		return slow / fast
	}, "slope-ratio")
}

// BenchmarkFig09Trace reproduces Figure 9 (execution trace); no headline
// metric, the value is the Gantt generation itself.
func BenchmarkFig09Trace(b *testing.B) {
	runFigure(b, "9", nil, "")
}

// BenchmarkFig10HomogeneousBus reproduces Figure 10; metric: LIFO lp /
// INC_C lp at the largest size (≥ 1 on buses, see EXPERIMENTS.md).
func BenchmarkFig10HomogeneousBus(b *testing.B) {
	runFigure(b, "10", lastOf("LIFO lp/INC_C lp"), "lifo/fifo-lp")
}

// BenchmarkFig11HeteroComp reproduces Figure 11; metric: INC_W real /
// INC_C lp at the largest size. On homogeneous-communication platforms all
// FIFO orders share the same LP optimum (bus property), so the heuristics
// only separate in the measured runs.
func BenchmarkFig11HeteroComp(b *testing.B) {
	runFigure(b, "11", lastOf("INC_W real/INC_C lp"), "incw-real/lp")
}

// BenchmarkFig12HeteroStar reproduces Figure 12; metric: LIFO lp / INC_C
// lp at the largest size (< 1: LIFO overtakes FIFO on heterogeneous
// platforms).
func BenchmarkFig12HeteroStar(b *testing.B) {
	runFigure(b, "12", lastOf("LIFO lp/INC_C lp"), "lifo/fifo-lp")
}

// BenchmarkFig13aComputeX10 reproduces Figure 13(a); metric: LIFO real /
// INC_C lp at the largest size.
func BenchmarkFig13aComputeX10(b *testing.B) {
	runFigure(b, "13a", lastOf("LIFO real/INC_C lp"), "lifo-real/lp")
}

// BenchmarkFig13bCommX10 reproduces Figure 13(b); metric: INC_C real /
// INC_C lp at the largest size (grows with size — the linear-model limit).
func BenchmarkFig13bCommX10(b *testing.B) {
	runFigure(b, "13b", lastOf("INC_C real/INC_C lp"), "real/lp")
}

// BenchmarkFig14Participation reproduces Figure 14 (both x = 1 and x = 3);
// metric: number of workers enrolled with 4 available at x = 1 (paper: 3).
func BenchmarkFig14Participation(b *testing.B) {
	cfg := benchConfig()
	var enrolled float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ra, err := experiments.Fig14Participation(cfg, 1)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.Fig14Participation(cfg, 3); err != nil {
			b.Fatal(err)
		}
		nb := ra.Series[2].Y
		enrolled = nb[len(nb)-1]
	}
	b.ReportMetric(enrolled, "workers-at-x1")
}

// BenchmarkTheorem1OptimalFIFO benchmarks the polynomial-time optimal FIFO
// computation (Theorem 1 + Proposition 1) on the paper-sized 11-worker
// platform (index TH1 in DESIGN.md), through the engine.
func BenchmarkTheorem1OptimalFIFO(b *testing.B) {
	rng := rand.New(rand.NewSource(41))
	sp := dls.RandomSpeeds(rng, 11, dls.Heterogeneous)
	p := sp.Platform(dls.DefaultApp(100))
	req := dls.Request{Platform: p, Strategy: dls.StrategyFIFO}
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dls.Solve(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Engine benchmarks ------------------------------------------------------
//
// These track the scaling substrate added by the Solver engine: batch
// fan-out across the worker pool and the LRU result cache.

// batchBenchRequests builds the mixed 64-request workload used by the
// engine benchmarks: 16 heterogeneous 11-worker platforms × 4 strategies.
func batchBenchRequests() []dls.Request {
	rng := rand.New(rand.NewSource(60))
	var reqs []dls.Request
	for i := 0; i < 16; i++ {
		p := dls.RandomSpeeds(rng, 11, dls.Heterogeneous).Platform(dls.DefaultApp(100))
		for _, strat := range []string{dls.StrategyFIFO, dls.StrategyLIFO, dls.StrategyIncC, dls.StrategyIncW} {
			reqs = append(reqs, dls.Request{Platform: p, Strategy: strat, Load: 1000})
		}
	}
	return reqs
}

// BenchmarkSolveBatch measures SolveBatch throughput across parallelism
// settings (the output is byte-identical at every setting; only wall-clock
// changes). No cache, so every request is a fresh LP solve.
func BenchmarkSolveBatch(b *testing.B) {
	reqs := batchBenchRequests()
	ctx := context.Background()
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("parallelism-%d", par), func(b *testing.B) {
			solver, err := dls.NewSolver(dls.WithParallelism(par))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := solver.SolveBatch(ctx, reqs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(reqs)), "requests/op")
		})
	}
}

// BenchmarkSolveCached compares a cold solve (no cache, LP every time)
// against a warm cache hit on the same request: the cache turns a simplex
// solve into an LRU lookup plus a result clone.
func BenchmarkSolveCached(b *testing.B) {
	rng := rand.New(rand.NewSource(61))
	p := dls.RandomSpeeds(rng, 11, dls.Heterogeneous).Platform(dls.DefaultApp(100))
	req := dls.Request{Platform: p, Strategy: dls.StrategyFIFO, Load: 1000}
	ctx := context.Background()
	b.Run("cold", func(b *testing.B) {
		solver, err := dls.NewSolver()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := solver.Solve(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		solver, err := dls.NewSolver(dls.WithCache(16))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := solver.Solve(ctx, req); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := solver.Solve(ctx, req)
			if err != nil {
				b.Fatal(err)
			}
			if !res.Cached {
				b.Fatal("expected a cache hit")
			}
		}
	})
}

// --- Evaluation-pipeline benchmarks ----------------------------------------
//
// These quantify the internal/eval tiering: the closed-form and direct
// tight-system backends against the simplex-only path on the factorial
// searches (the acceptance benchmarks of the scenario-evaluation pipeline)
// and on a single scenario solve.

// benchExhaustivePlatform is the heterogeneous 7-worker platform shared by
// the exhaustive benchmarks (5040 FIFO scenarios per run).
func benchExhaustivePlatform() *dls.Platform {
	rng := rand.New(rand.NewSource(62))
	return dls.RandomSpeeds(rng, 7, dls.Heterogeneous).Platform(dls.DefaultApp(100))
}

// BenchmarkBestFIFOExhaustive7 runs the p! FIFO order search at p = 7
// through the engine under each evaluation backend. The auto and direct
// tiers must produce the same winning order and loads as the simplex tier
// (covered by the agreement tests in internal/eval); the benchmark tracks
// the speedup of the tight-system path over the simplex-only path.
func BenchmarkBestFIFOExhaustive7(b *testing.B) {
	p := benchExhaustivePlatform()
	ctx := context.Background()
	for _, mode := range []dls.EvalMode{dls.EvalAuto, dls.EvalDirect, dls.EvalSimplex} {
		b.Run(mode.String(), func(b *testing.B) {
			req := dls.Request{Platform: p, Strategy: dls.StrategyFIFOExhaustive, Eval: mode}
			var rho float64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := dls.Solve(ctx, req)
				if err != nil {
					b.Fatal(err)
				}
				rho = res.Throughput
			}
			b.ReportMetric(rho, "rho")
		})
	}
}

// BenchmarkBestFIFOExhaustive8 runs the p! FIFO order search at p = 8
// (40320 scenarios) under the incremental sweep — the scale PR 3's
// transposition-aware engine opened up (the per-scenario active-set reuse
// and dual screening keep the search polynomial-feeling even though the
// enumeration is factorial). Auto only: the simplex-only path takes
// seconds at this size.
func BenchmarkBestFIFOExhaustive8(b *testing.B) {
	rng := rand.New(rand.NewSource(62))
	p := dls.RandomSpeeds(rng, 8, dls.Heterogeneous).Platform(dls.DefaultApp(100))
	ctx := context.Background()
	req := dls.Request{Platform: p, Strategy: dls.StrategyFIFOExhaustive, Eval: dls.EvalAuto}
	var rho float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := dls.Solve(ctx, req)
		if err != nil {
			b.Fatal(err)
		}
		rho = res.Throughput
	}
	b.ReportMetric(rho, "rho")
}

// BenchmarkBatchChainEval measures the structure-of-arrays batch chain
// evaluator against per-scenario evaluation on the same 512 FIFO orders
// of one compute-bound 11-worker platform (every lane certifies, so both
// sides measure pure chain arithmetic; the batch runs the load and dual
// recurrences 8 scenarios per lockstep step). One sub-benchmark per
// available kernel variant (batch-purego, batch-unrolled, batch-avx2 where
// the CPU offers it); all variants are bitwise identical, so the ratios
// are pure kernel speed.
func BenchmarkBatchChainEval(b *testing.B) {
	rng := rand.New(rand.NewSource(65))
	p := dls.RandomSpeeds(rng, 11, dls.Heterogeneous).Platform(dls.DefaultApp(100)).ScaleComputation(20)
	const scenarios = 512
	orders := make([]platform.Order, scenarios)
	for i := range orders {
		orders[i] = platform.Order(rng.Perm(p.P()))
	}
	def := kern.Variant()
	defer kern.SetVariant(def)
	for _, variant := range kern.Variants() {
		b.Run("batch-"+variant, func(b *testing.B) {
			if !kern.SetVariant(variant) {
				b.Fatalf("variant %q unavailable", variant)
			}
			defer kern.SetVariant(def)
			batch, err := eval.NewBatch(schedule.OnePort, false, p.P())
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				batch.Reset()
				for _, o := range orders {
					if err := batch.Add(p, o); err != nil {
						b.Fatal(err)
					}
				}
				batch.Run()
				for l := 0; l < batch.Len(); l++ {
					if _, ok := batch.Throughput(l); !ok {
						b.Fatal("lane failed to certify on a compute-bound platform")
					}
				}
			}
			b.ReportMetric(scenarios, "scenarios/op")
		})
	}
	b.Run("scalar", func(b *testing.B) {
		sess := eval.NewSession()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, o := range orders {
				sc := eval.Scenario{Platform: p, Send: o, Return: o, Model: schedule.OnePort}
				if _, err := sess.ThroughputTrusted(sc, eval.Auto); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(scenarios, "scenarios/op")
	})
}

// BenchmarkBestPairExhaustive4 runs the (p!)² pair search at p = 4 (576
// scenarios before pruning) under each backend; auto additionally exercises
// the incumbent seeding and the return-order branch-and-bound of the search
// itself.
func BenchmarkBestPairExhaustive4(b *testing.B) {
	p := benchPairPlatform(4)
	ctx := context.Background()
	for _, mode := range []dls.EvalMode{dls.EvalAuto, dls.EvalSimplex} {
		b.Run(mode.String(), func(b *testing.B) {
			req := dls.Request{Platform: p, Strategy: dls.StrategyPairExhaustive, Eval: mode}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dls.Solve(ctx, req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchPairPlatform draws the heterogeneous reference platform of the
// pair-search benchmarks (the CI pruning gate watches the p = 6 instance).
func benchPairPlatform(n int) *dls.Platform {
	rng := rand.New(rand.NewSource(63))
	return dls.RandomSpeeds(rng, n, dls.Heterogeneous).Platform(dls.DefaultApp(100))
}

// reportPairPruning attaches the branch-and-bound instrumentation of the
// measured interval as benchmark metrics: subtrees cut per op and the
// fraction of generated return-order children that were cut (the CI bench
// job fails when the counter stops advancing — the bound silently stopped
// firing). See BENCH.md for how to read the counters.
func reportPairPruning(b *testing.B, before, after core.PairStats) {
	pruned := after.SubtreesPruned - before.SubtreesPruned
	nodes := after.NodesExpanded - before.NodesExpanded
	leaves := after.LeavesEvaluated - before.LeavesEvaluated
	outer := after.OuterPruned - before.OuterPruned
	b.ReportMetric(float64(pruned)/float64(b.N), "pruned-subtrees/op")
	b.ReportMetric(float64(outer)/float64(b.N), "pruned-outer/op")
	if children := pruned + nodes + leaves; children > 0 {
		b.ReportMetric(float64(pruned)/float64(children), "pruned-frac")
	}
}

// BenchmarkBestPairExhaustive5 compares the two pair-search algorithms at
// p = 5 under the auto backend: the flat double loop (send-prefix reuse +
// whole-inner-loop SendBound pruning, the PR 3 search) against the
// branch-and-bound recursion over return-order prefixes. The acceptance
// criterion of the search-core refactor is bb ≥ 3× faster than flat here.
func BenchmarkBestPairExhaustive5(b *testing.B) {
	p := benchPairPlatform(5)
	ctx := context.Background()
	for _, tc := range []struct {
		name string
		algo core.PairAlgo
	}{{"flat", core.PairFlat}, {"bb", core.PairBB}} {
		b.Run(tc.name, func(b *testing.B) {
			var rho float64
			before := core.PairStatsSnapshot()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pr, err := core.BestPairExhaustiveAlgo(ctx, p, schedule.OnePort, eval.Auto, tc.algo)
				if err != nil {
					b.Fatal(err)
				}
				rho = pr.Schedule.Throughput()
			}
			b.StopTimer()
			b.ReportMetric(rho, "rho")
			if tc.algo == core.PairBB {
				reportPairPruning(b, before, core.PairStatsSnapshot())
			}
		})
	}
}

// benchPairParallel runs the pair branch-and-bound on p at the given
// worker counts as sub-benchmarks (par1 = the serial search), checking
// every parallel result bitwise against the serial one — the scaling curve
// in BENCH_pr7.json is only meaningful if the work done is identical.
func benchPairParallel(b *testing.B, p *dls.Platform, workers []int) {
	serial, err := core.BestPairExhaustiveAlgo(context.Background(), p, schedule.OnePort, eval.Auto, core.PairBB)
	if err != nil {
		b.Fatal(err)
	}
	want := serial.Schedule.Throughput()
	for _, w := range workers {
		b.Run(fmt.Sprintf("par%d", w), func(b *testing.B) {
			ctx := core.ContextWithSearchParallelism(context.Background(), w)
			var rho float64
			before := core.PairStatsSnapshot()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pr, err := core.BestPairExhaustiveAlgo(ctx, p, schedule.OnePort, eval.Auto, core.PairBB)
				if err != nil {
					b.Fatal(err)
				}
				rho = pr.Schedule.Throughput()
			}
			b.StopTimer()
			if rho != want {
				b.Fatalf("parallel search (%d workers) returned ρ=%.17g, serial has %.17g", w, rho, want)
			}
			b.ReportMetric(rho, "rho")
			reportPairPruning(b, before, core.PairStatsSnapshot())
		})
	}
}

// BenchmarkBestPairExhaustive6 runs the pair search at p = 6 — 720 send
// orders over up to 720 return orders each, a scale only the
// branch-and-bound reaches (the flat loop takes tens of seconds here) —
// serial and on a 4-worker stealing pool. Acceptance criteria: more than
// half of the generated return-order subtrees cut by the prefix bound
// (the PR 4 gate, on every sub-benchmark), and par4 at least 2× faster
// than par1 on a 4-core runner (the PR 7 gate).
func BenchmarkBestPairExhaustive6(b *testing.B) {
	benchPairParallel(b, benchPairPlatform(6), []int{1, 4})
}

// BenchmarkBestPairExhaustive7 is the p = 7 scale point — 5040 send orders,
// up to 5040 return orders each. Run with -benchtime 1x unless you mean
// it. The PR 7 acceptance criterion is sub-second wall clock on a 4-core
// runner with the incremental bound path.
func BenchmarkBestPairExhaustive7(b *testing.B) {
	benchPairParallel(b, benchPairPlatform(7), []int{1, 4})
}

// BenchmarkReturnPrefixNode isolates the per-node cost of the pair
// branch-and-bound's bound computation at q = 7: one fixed 512-move
// Push/Pop walk through the return-prefix tree, a Bound() at every node.
// "update" is the Sherman–Morrison incremental path (O(q²)/node, the
// default), "refactor" pins SetIncremental(false) so every node pays a
// fresh O(q³) LU — the PR 7 acceptance criterion is update ≥ 1.5× the
// node throughput of refactor.
func BenchmarkReturnPrefixNode(b *testing.B) {
	const q = 7
	p := benchPairPlatform(q)
	send := make(platform.Order, q)
	for i := range send {
		send[i] = i
	}
	// A fixed walk replaying the search's traversal shape — expand every
	// sibling (Push, Bound, Pop), then descend into one of them — over
	// interior depths only: Bound() at full depth is from-scratch on both
	// paths by design, and the search bounds after Push, never after Pop.
	type move struct{ pos int } // pos >= 0: Push(pos) + Bound(); pos < 0: Pop
	var moves []move
	nodes := 0
	var open [q]bool
	for i := range open {
		open[i] = true
	}
	var walk func(depth, rot int)
	walk = func(depth, rot int) {
		if nodes >= 512 || depth == q-1 {
			return
		}
		var opens []int
		for s := 0; s < q; s++ {
			if open[s] {
				opens = append(opens, s)
			}
		}
		down := opens[rot%len(opens)]
		for _, pos := range opens {
			moves = append(moves, move{pos: pos})
			nodes++
			open[pos] = false
			if pos == down {
				walk(depth+1, rot+1)
			}
			open[pos] = true
			moves = append(moves, move{pos: -1})
		}
	}
	for rot := 0; nodes < 512; rot++ {
		walk(0, rot)
	}
	for _, tc := range []struct {
		name        string
		incremental bool
	}{{"update", true}, {"refactor", false}} {
		b.Run(tc.name, func(b *testing.B) {
			sess := eval.NewSession()
			rp, err := sess.NewReturnPrefix(p, schedule.OnePort, eval.Auto)
			if err != nil {
				b.Fatal(err)
			}
			rp.SetIncremental(tc.incremental)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := rp.Reset(send); err != nil {
					b.Fatal(err)
				}
				for _, mv := range moves {
					if mv.pos >= 0 {
						rp.Push(mv.pos)
						rp.Bound()
					} else {
						rp.Pop()
					}
				}
				for rp.Depth() > 0 {
					rp.Pop()
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(nodes), "nodes/op")
		})
	}
}

// BenchmarkScenarioEval solves one fixed 11-worker FIFO scenario under each
// backend: the per-scenario cost that the factorial searches multiply. The
// platform is compute-bound (computation scaled up) so the all-tight
// closed form applies — the port-bound/resource-selection regimes are
// covered by the exhaustive benchmarks above.
func BenchmarkScenarioEval(b *testing.B) {
	rng := rand.New(rand.NewSource(64))
	p := dls.RandomSpeeds(rng, 11, dls.Heterogeneous).Platform(dls.DefaultApp(100)).ScaleComputation(20)
	ctx := context.Background()
	for _, mode := range []dls.EvalMode{dls.EvalClosedForm, dls.EvalDirect, dls.EvalSimplex} {
		b.Run(mode.String(), func(b *testing.B) {
			req := dls.Request{Platform: p, Strategy: dls.StrategyIncC, Eval: mode}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dls.Solve(ctx, req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTheorem2BusClosedForm benchmarks the closed-form bus throughput
// against its LP counterpart (index TH2 in DESIGN.md): the closed form is
// the fast path, the LP the reference.
func BenchmarkTheorem2BusClosedForm(b *testing.B) {
	p := dls.NewBus(0.1, 0.05, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 1.2)
	b.Run("closed-form", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := dls.BusFIFOThroughput(p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("linear-program", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := dls.OptimalFIFO(p, dls.Float64); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Ablation benchmarks ---------------------------------------------------
//
// These quantify the design choices documented in DESIGN.md: the arithmetic
// of the LP solver, the integer rounding policy, the communication
// discipline, the one-port restriction itself, and the one-round choice.

// BenchmarkAblationArithmetic compares the float64 simplex against the
// exact rational simplex on the paper-sized 11-worker FIFO program.
func BenchmarkAblationArithmetic(b *testing.B) {
	rng := rand.New(rand.NewSource(50))
	sp := dls.RandomSpeeds(rng, 11, dls.Heterogeneous)
	p := sp.Platform(dls.DefaultApp(100))
	for _, tc := range []struct {
		name  string
		arith dls.Arith
	}{{"float64", dls.Float64}, {"exact-rational", dls.Exact}} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := dls.OptimalFIFO(p, tc.arith); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationRounding compares the paper's rounding policy (floor,
// then top-up the first workers of σ1) against a largest-remainder policy,
// reporting the simulated makespan overhead of each relative to the
// fractional LP prediction.
func BenchmarkAblationRounding(b *testing.B) {
	rng := rand.New(rand.NewSource(51))
	app := dls.DefaultApp(100)
	sp := dls.RandomSpeeds(rng, 11, dls.Heterogeneous)
	plat := sp.Platform(app)
	sched, err := dls.OptimalFIFO(plat, dls.Float64)
	if err != nil {
		b.Fatal(err)
	}
	const M = 1000
	predicted := dls.MakespanForLoad(sched, M)

	largestRemainder := func(alphas []float64, order dls.Order, total int) []int {
		mass := 0.0
		for _, i := range order {
			mass += alphas[i]
		}
		counts := make([]int, len(alphas))
		type frac struct {
			worker int
			rem    float64
		}
		var fr []frac
		assigned := 0
		for _, i := range order {
			share := alphas[i] / mass * float64(total)
			counts[i] = int(share)
			assigned += counts[i]
			fr = append(fr, frac{i, share - float64(counts[i])})
		}
		sort.Slice(fr, func(a, c int) bool { return fr[a].rem > fr[c].rem })
		for k := 0; k < total-assigned; k++ {
			counts[fr[k].worker]++
		}
		return counts
	}

	run := func(counts []int) float64 {
		loads := make([]float64, len(counts))
		for i, c := range counts {
			loads[i] = float64(c)
		}
		res, err := dls.Simulate(dls.SimulationParams{
			App: app, Speeds: sp, Loads: loads,
			SendOrder: sched.SendOrder, ReturnOrder: sched.ReturnOrder,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res.Makespan
	}

	b.Run("paper-topup", func(b *testing.B) {
		var overhead float64
		for i := 0; i < b.N; i++ {
			counts, err := dls.DistributeInteger(sched.Alpha, sched.SendOrder, M)
			if err != nil {
				b.Fatal(err)
			}
			overhead = run(counts)/predicted - 1
		}
		b.ReportMetric(overhead*100, "%overhead")
	})
	b.Run("largest-remainder", func(b *testing.B) {
		var overhead float64
		for i := 0; i < b.N; i++ {
			counts := largestRemainder(sched.Alpha, sched.SendOrder, M)
			overhead = run(counts)/predicted - 1
		}
		b.ReportMetric(overhead*100, "%overhead")
	})
}

// BenchmarkAblationDiscipline compares the communication disciplines on one
// heterogeneous platform: optimal FIFO, optimal LIFO and the unrestricted
// best permutation pair (small platform so the pair search is exhaustive).
func BenchmarkAblationDiscipline(b *testing.B) {
	rng := rand.New(rand.NewSource(52))
	sp := dls.RandomSpeeds(rng, 5, dls.Heterogeneous)
	p := sp.Platform(dls.DefaultApp(200))
	b.Run("optimal-fifo", func(b *testing.B) {
		var rho float64
		for i := 0; i < b.N; i++ {
			s, err := dls.OptimalFIFO(p, dls.Float64)
			if err != nil {
				b.Fatal(err)
			}
			rho = s.Throughput()
		}
		b.ReportMetric(rho, "units/s")
	})
	b.Run("optimal-lifo", func(b *testing.B) {
		var rho float64
		for i := 0; i < b.N; i++ {
			s, err := dls.OptimalLIFO(p, dls.Float64)
			if err != nil {
				b.Fatal(err)
			}
			rho = s.Throughput()
		}
		b.ReportMetric(rho, "units/s")
	})
	b.Run("best-pair-exhaustive", func(b *testing.B) {
		var rho float64
		for i := 0; i < b.N; i++ {
			pr, err := dls.BestPairExhaustive(p, dls.OnePort, dls.Float64)
			if err != nil {
				b.Fatal(err)
			}
			rho = pr.Schedule.Throughput()
		}
		b.ReportMetric(rho, "units/s")
	})
}

// BenchmarkAblationOnePortPenalty reports the throughput cost of the
// one-port restriction versus the companion paper's two-port model.
func BenchmarkAblationOnePortPenalty(b *testing.B) {
	rng := rand.New(rand.NewSource(53))
	sp := dls.RandomSpeeds(rng, 11, dls.Heterogeneous)
	p := sp.Platform(dls.DefaultApp(80))
	var penalty float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := dls.OnePortPenalty(p, dls.Float64)
		if err != nil {
			b.Fatal(err)
		}
		penalty = r
	}
	b.ReportMetric(penalty, "two/one-port")
}

// BenchmarkAblationMultiRound reports the best uniform round count for a
// naive equal split with per-message latency (the one-round design choice
// of the paper versus the multi-round extension).
func BenchmarkAblationMultiRound(b *testing.B) {
	rng := rand.New(rand.NewSource(54))
	sp := dls.RandomSpeeds(rng, 6, dls.Heterogeneous)
	p := sp.Platform(dls.DefaultApp(200))
	loads := make([]float64, p.P())
	for i := range loads {
		loads[i] = 1000.0 / float64(p.P())
	}
	params := dls.MultiRoundParams{
		Platform: p,
		Loads:    loads,
		Order:    p.ByC(),
		Latency:  0.004,
	}
	var bestR int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, _, err := dls.BestRounds(params, 24)
		if err != nil {
			b.Fatal(err)
		}
		bestR = r
	}
	b.ReportMetric(float64(bestR), "best-rounds")
}
