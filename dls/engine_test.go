package dls_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/dls"
)

func testPlatform() *dls.Platform {
	return dls.NewPlatform(
		dls.Worker{C: 0.05, W: 0.3, D: 0.025},
		dls.Worker{C: 0.08, W: 0.2, D: 0.040},
		dls.Worker{C: 0.10, W: 0.5, D: 0.050},
	)
}

func mustSolver(t *testing.T, opts ...dls.Option) *dls.Solver {
	t.Helper()
	s, err := dls.NewSolver(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// Test strategies live in the process-global registry, so they are
// registered exactly once per process and must survive `go test -count=N`:
// their closures only touch package-level state (the counter below).
var (
	registerTestStrategies sync.Once

	// countingStrategyRuns counts executions of "test-cache-counting";
	// tests reset it before use.
	countingStrategyRuns atomic.Int64
)

const (
	customStrategy   = "test-registry-constant"
	countingStrategy = "test-cache-counting"
)

func setupTestStrategies(t *testing.T) {
	t.Helper()
	registerTestStrategies.Do(func() {
		incC := func(req dls.Request) (*dls.Result, error) {
			res, err := dls.Solve(context.Background(), dls.Request{Platform: req.Platform, Strategy: dls.StrategyIncC})
			if err != nil {
				return nil, err
			}
			return &dls.Result{Schedule: res.Schedule, Send: res.Send, Return: res.Return}, nil
		}
		if err := dls.RegisterStrategy(customStrategy, func(_ context.Context, req dls.Request) (*dls.Result, error) {
			return incC(req)
		}); err != nil {
			t.Fatal(err)
		}
		if err := dls.RegisterStrategy(countingStrategy, func(_ context.Context, req dls.Request) (*dls.Result, error) {
			countingStrategyRuns.Add(1)
			return incC(req)
		}); err != nil {
			t.Fatal(err)
		}
	})
}

func TestStrategyRegistry(t *testing.T) {
	// Every scheduling entrypoint of the old API has a registered strategy.
	for _, name := range []string{
		dls.StrategyFIFO, dls.StrategyLIFO, dls.StrategyIncC, dls.StrategyIncW,
		dls.StrategyDecC, dls.StrategyFIFOOrder, dls.StrategyLIFOOrder,
		dls.StrategyScenario, dls.StrategyBusFIFO, dls.StrategyFIFOExhaustive,
		dls.StrategyLIFOExhaustive, dls.StrategyPairExhaustive,
		dls.StrategyFIFOAffine, dls.StrategyScenarioAffine,
	} {
		found := false
		for _, got := range dls.Strategies() {
			if got == name {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("built-in strategy %q not in Strategies()", name)
		}
	}

	// Registration of a custom strategy makes it solvable by name.
	setupTestStrategies(t)
	res, err := dls.Solve(context.Background(), dls.Request{Platform: testPlatform(), Strategy: customStrategy})
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != customStrategy || res.Throughput <= 0 {
		t.Errorf("custom strategy result: strategy=%q throughput=%g", res.Strategy, res.Throughput)
	}

	// Lookup failure lists the registry; registration rejects bad input.
	if _, err := dls.Solve(context.Background(), dls.Request{Platform: testPlatform(), Strategy: "no-such"}); err == nil {
		t.Error("unknown strategy must fail")
	}
	if err := dls.RegisterStrategy(customStrategy, nil); err == nil {
		t.Error("nil StrategyFunc must be rejected")
	}
	if err := dls.RegisterStrategy("", func(context.Context, dls.Request) (*dls.Result, error) { return nil, nil }); err == nil {
		t.Error("empty name must be rejected")
	}
	if err := dls.RegisterStrategy(dls.StrategyFIFO, func(context.Context, dls.Request) (*dls.Result, error) { return nil, nil }); err == nil {
		t.Error("duplicate registration must be rejected")
	}
}

func TestOptionValidation(t *testing.T) {
	for name, opt := range map[string]dls.Option{
		"parallelism-zero":     dls.WithParallelism(0),
		"parallelism-negative": dls.WithParallelism(-3),
		"cache-negative":       dls.WithCache(-1),
		"timeout-zero":         dls.WithTimeout(0),
		"timeout-negative":     dls.WithTimeout(-time.Second),
		"arith-unknown":        dls.WithArith(dls.Arith(42)),
	} {
		if _, err := dls.NewSolver(opt); err == nil {
			t.Errorf("%s: NewSolver accepted an invalid option", name)
		}
	}
	if _, err := dls.NewSolver(dls.WithParallelism(8), dls.WithCache(64), dls.WithTimeout(time.Second), dls.WithArith(dls.Exact)); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}
}

// TestWithSearchParallelism pins the engine-level contract of the
// intra-request search pool: a parallel solver must return byte-identical
// results to a serial one on the exhaustive strategies, and running a
// pair search must advance the Stats().PairSearch counters.
func TestWithSearchParallelism(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	ws := make([]dls.Worker, 5)
	for i := range ws {
		ws[i] = dls.Worker{
			C: 0.02 + 0.2*rng.Float64(),
			W: 0.05 + 0.5*rng.Float64(),
			D: 0.01 + 0.3*rng.Float64(),
		}
	}
	p := dls.NewPlatform(ws...)
	serial := mustSolver(t, dls.WithSearchParallelism(1))
	par := mustSolver(t, dls.WithSearchParallelism(4))
	for _, strategy := range []string{dls.StrategyFIFOExhaustive, dls.StrategyLIFOExhaustive, dls.StrategyPairExhaustive} {
		req := dls.Request{Platform: p, Strategy: strategy}
		want, err := serial.Solve(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		got, err := par.Solve(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if got.Throughput != want.Throughput ||
			!reflect.DeepEqual(got.Schedule.Alpha, want.Schedule.Alpha) ||
			!reflect.DeepEqual(got.Send, want.Send) ||
			!reflect.DeepEqual(got.Return, want.Return) {
			t.Fatalf("%s: parallel result diverges from serial\nparallel: ρ=%v σ1=%v σ2=%v α=%v\nserial:   ρ=%v σ1=%v σ2=%v α=%v",
				strategy, got.Throughput, got.Send, got.Return, got.Schedule.Alpha,
				want.Throughput, want.Send, want.Return, want.Schedule.Alpha)
		}
	}
	st := par.Stats()
	if st.PairSearch.NodesExpanded == 0 || st.PairSearch.LeavesEvaluated == 0 {
		t.Fatalf("pair search left no trace in Stats().PairSearch: %+v", st.PairSearch)
	}
	// WithSearchParallelism accepts any n: n <= 0 selects auto.
	mustSolver(t, dls.WithSearchParallelism(0))
	mustSolver(t, dls.WithSearchParallelism(-1))
}

func TestRequestValidation(t *testing.T) {
	solver := mustSolver(t)
	ctx := context.Background()
	for name, req := range map[string]dls.Request{
		"nil-platform":  {Strategy: dls.StrategyFIFO},
		"no-strategy":   {Platform: testPlatform()},
		"bad-model":     {Platform: testPlatform(), Strategy: dls.StrategyFIFO, Model: dls.Model(9)},
		"bad-arith":     {Platform: testPlatform(), Strategy: dls.StrategyFIFO, Arith: dls.Arith(9)},
		"negative-load": {Platform: testPlatform(), Strategy: dls.StrategyFIFO, Load: -1},
		"no-affine":     {Platform: testPlatform(), Strategy: dls.StrategyFIFOAffine},
		"bad-platform":  {Platform: dls.NewPlatform(dls.Worker{C: -1, W: 1, D: 1}), Strategy: dls.StrategyFIFO},
	} {
		if _, err := solver.Solve(ctx, req); err == nil {
			t.Errorf("%s: Solve accepted an invalid request", name)
		}
	}
}

// TestCacheHitMiss verifies the acceptance criterion that a cached re-solve
// of an identical request performs no LP solve: the strategy function must
// not run again, which Stats.Solves counts directly.
func TestCacheHitMiss(t *testing.T) {
	setupTestStrategies(t)
	countingStrategyRuns.Store(0)

	solver := mustSolver(t, dls.WithCache(16))
	ctx := context.Background()
	req := dls.Request{Platform: testPlatform(), Strategy: countingStrategy, Load: 100}

	first, err := solver.Solve(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Error("first solve must be a miss")
	}
	second, err := solver.Solve(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("identical re-solve must hit the cache")
	}
	if n := countingStrategyRuns.Load(); n != 1 {
		t.Errorf("strategy ran %d times for identical requests, want 1 (no re-solve)", n)
	}
	st := solver.Stats()
	if st.Solves != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 solve / 1 hit / 1 miss", st)
	}
	if first.Makespan != second.Makespan || second.Makespan != 100/second.Throughput {
		t.Errorf("makespan mismatch: %g vs %g", first.Makespan, second.Makespan)
	}

	// The cached copy is isolated: mutating a returned schedule must not
	// poison later hits.
	second.Schedule.Alpha[0] = -1
	third, err := solver.Solve(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if third.Schedule.Alpha[0] == -1 {
		t.Error("cache returned an aliased schedule")
	}

	// A different request (other strategy) is a miss, not a collision.
	if res, err := solver.Solve(ctx, dls.Request{Platform: testPlatform(), Strategy: dls.StrategyLIFO}); err != nil {
		t.Fatal(err)
	} else if res.Cached {
		t.Error("distinct request reported as cached")
	}
}

// TestCacheNoLPResolve pins the criterion on a real LP strategy: re-solving
// the same FIFO request must not run the simplex again.
func TestCacheNoLPResolve(t *testing.T) {
	solver := mustSolver(t, dls.WithCache(4))
	ctx := context.Background()
	req := dls.Request{Platform: testPlatform(), Strategy: dls.StrategyFIFO}
	a, err := solver.Solve(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := solver.Solve(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if got := solver.Stats().Solves; got != 1 {
		t.Errorf("LP solved %d times, want 1", got)
	}
	if !reflect.DeepEqual(a.Schedule, b.Schedule) {
		t.Error("cached schedule differs from computed schedule")
	}
}

func TestSolveCancellation(t *testing.T) {
	// 5 workers: the pair search enumerates (5!)² = 14400 scenario LPs —
	// long enough that a deadline interrupts it mid-enumeration.
	rng := rand.New(rand.NewSource(7))
	p := dls.RandomSpeeds(rng, 5, dls.Heterogeneous).Platform(dls.DefaultApp(100))

	// Pre-cancelled context: the engine must not even start.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	solver := mustSolver(t)
	if _, err := solver.Solve(cancelled, dls.Request{Platform: p, Strategy: dls.StrategyPairExhaustive}); !errors.Is(err, context.Canceled) {
		t.Errorf("want context.Canceled, got %v", err)
	}

	// WithTimeout: the (p!)² search must abort with DeadlineExceeded long
	// before it could finish. The exact-rational backend is pinned so the
	// search stays slow enough for the deadline to hit — the tiered auto
	// pipeline finishes this platform faster than a millisecond.
	timed := mustSolver(t, dls.WithTimeout(time.Millisecond))
	start := time.Now()
	_, err := timed.Solve(context.Background(), dls.Request{Platform: p, Strategy: dls.StrategyPairExhaustive, Arith: dls.Exact})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("want context.DeadlineExceeded, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v, search not actually interrupted", elapsed)
	}
}

// TestPairSearchStrategies pins the pair-search strategy knob at the
// engine level: pair-bb and pair-flat must agree with pair-exhaustive on
// the optimum, pair-bb must reject exact arithmetic, and a WithTimeout
// deadline must abort a p = 7 pair-bb solve inside the return-order
// recursion (the search is far too large to finish in a millisecond).
func TestPairSearchStrategies(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	p := dls.RandomSpeeds(rng, 4, dls.Heterogeneous).Platform(dls.DefaultApp(100))
	solver := mustSolver(t)
	ctx := context.Background()
	ref, err := solver.Solve(ctx, dls.Request{Platform: p, Strategy: dls.StrategyPairExhaustive})
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []string{dls.StrategyPairBB, dls.StrategyPairFlat} {
		res, err := solver.Solve(ctx, dls.Request{Platform: p, Strategy: strat})
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if d := res.Throughput - ref.Throughput; d > 1e-9*(1+ref.Throughput) || d < -1e-9*(1+ref.Throughput) {
			t.Errorf("%s throughput %.12g != pair-exhaustive %.12g", strat, res.Throughput, ref.Throughput)
		}
	}
	if _, err := solver.Solve(ctx, dls.Request{Platform: p, Strategy: dls.StrategyPairBB, Arith: dls.Exact}); err == nil {
		t.Error("pair-bb with exact arithmetic must fail")
	}

	big := dls.RandomSpeeds(rng, 7, dls.Heterogeneous).Platform(dls.DefaultApp(100))
	timed := mustSolver(t, dls.WithTimeout(time.Millisecond))
	start := time.Now()
	_, err = timed.Solve(ctx, dls.Request{Platform: big, Strategy: dls.StrategyPairBB})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("want context.DeadlineExceeded from the p=7 pair-bb solve, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v, the recursion is not polling the deadline", elapsed)
	}
}

// batchRequests builds a mixed workload: several platforms × strategies,
// with deliberate duplicates to exercise batch deduplication.
func batchRequests(t *testing.T) []dls.Request {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	var reqs []dls.Request
	for i := 0; i < 6; i++ {
		p := dls.RandomSpeeds(rng, 6, dls.Heterogeneous).Platform(dls.DefaultApp(80 + 20*i))
		for _, strat := range []string{dls.StrategyFIFO, dls.StrategyLIFO, dls.StrategyIncC, dls.StrategyIncW} {
			reqs = append(reqs, dls.Request{Platform: p, Strategy: strat, Load: 1000})
		}
		// Duplicate of the first request of this platform.
		reqs = append(reqs, dls.Request{Platform: p, Strategy: dls.StrategyFIFO, Load: 1000})
	}
	return reqs
}

// TestSolveBatchDeterminism verifies the acceptance criterion that
// SolveBatch under WithParallelism(8) returns byte-identical results to
// sequential solving.
func TestSolveBatchDeterminism(t *testing.T) {
	reqs := batchRequests(t)
	var outputs [][]byte
	var structured [][]*dls.Result
	for _, par := range []int{1, 8} {
		solver := mustSolver(t, dls.WithParallelism(par), dls.WithCache(64))
		results, err := solver.SolveBatch(context.Background(), reqs)
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != len(reqs) {
			t.Fatalf("got %d results for %d requests", len(results), len(reqs))
		}
		raw, err := json.Marshal(results)
		if err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, raw)
		structured = append(structured, results)
	}
	if string(outputs[0]) != string(outputs[1]) {
		t.Error("SolveBatch output differs between parallelism 1 and 8")
	}
	if !reflect.DeepEqual(structured[0], structured[1]) {
		t.Error("SolveBatch structured results differ between parallelism 1 and 8")
	}
	// Dedup: the repeated request of each platform is served without a new
	// solve and marked Cached.
	for i, res := range structured[1] {
		if i%5 == 4 && !res.Cached {
			t.Errorf("duplicate request %d not deduplicated", i)
		}
	}
}

func TestSolveBatchErrors(t *testing.T) {
	solver := mustSolver(t, dls.WithParallelism(4))
	// One bad platform (no common z for StrategyFIFO) among good requests.
	noZ := dls.NewPlatform(
		dls.Worker{C: 1, W: 1, D: 0.5},
		dls.Worker{C: 1, W: 1, D: 0.7},
	)
	reqs := []dls.Request{
		{Platform: testPlatform(), Strategy: dls.StrategyFIFO},
		{Platform: noZ, Strategy: dls.StrategyFIFO},
		{Platform: testPlatform(), Strategy: dls.StrategyLIFO},
	}
	results, err := solver.SolveBatch(context.Background(), reqs)
	if !errors.Is(err, dls.ErrNoCommonZ) {
		t.Errorf("joined batch error must wrap ErrNoCommonZ, got %v", err)
	}
	if results[0] == nil || results[1] != nil || results[2] == nil {
		t.Errorf("per-slot results wrong: %v", results)
	}
}

func TestSolveStreamOrdering(t *testing.T) {
	solver := mustSolver(t, dls.WithParallelism(8))
	reqs := batchRequests(t)
	in := make(chan dls.Request)
	go func() {
		defer close(in)
		for _, r := range reqs {
			in <- r
		}
	}()
	var got []dls.StreamResult
	for sr := range solver.SolveStream(context.Background(), in) {
		got = append(got, sr)
	}
	if len(got) != len(reqs) {
		t.Fatalf("stream yielded %d results for %d requests", len(got), len(reqs))
	}
	for i, sr := range got {
		if sr.Index != i {
			t.Fatalf("stream out of order: position %d has index %d", i, sr.Index)
		}
		if sr.Err != nil {
			t.Fatalf("request %d failed: %v", i, sr.Err)
		}
	}
	// Streamed results match individually solved ones.
	want, err := solver.Solve(context.Background(), reqs[3])
	if err != nil {
		t.Fatal(err)
	}
	if got[3].Result.Throughput != want.Throughput {
		t.Errorf("stream result %g != solo result %g", got[3].Result.Throughput, want.Throughput)
	}
}

// TestEngineCoversOldAPI solves one request per built-in strategy and
// checks each against its historical free function.
func TestEngineCoversOldAPI(t *testing.T) {
	p := testPlatform()
	bus := dls.NewBus(0.1, 0.05, 0.4, 0.6, 0.8)
	order := dls.Order{0, 1, 2}
	rev := dls.Order{2, 1, 0}
	aff := dls.ZeroAffine(p.P())
	ctx := context.Background()
	solver := mustSolver(t)

	type probe struct {
		req  dls.Request
		want func() (float64, error) // throughput of the old entrypoint
	}
	probes := map[string]probe{
		"fifo": {dls.Request{Platform: p, Strategy: dls.StrategyFIFO}, func() (float64, error) {
			s, err := dls.OptimalFIFO(p, dls.Float64)
			if err != nil {
				return 0, err
			}
			return s.Throughput(), nil
		}},
		"fifo-two-port": {dls.Request{Platform: p, Strategy: dls.StrategyFIFO, Model: dls.TwoPort}, func() (float64, error) {
			s, err := dls.OptimalFIFOTwoPort(p, dls.Float64)
			if err != nil {
				return 0, err
			}
			return s.Throughput(), nil
		}},
		"lifo": {dls.Request{Platform: p, Strategy: dls.StrategyLIFO}, func() (float64, error) {
			s, err := dls.OptimalLIFO(p, dls.Float64)
			if err != nil {
				return 0, err
			}
			return s.Throughput(), nil
		}},
		"scenario": {dls.Request{Platform: p, Strategy: dls.StrategyScenario, Send: order, Return: rev}, func() (float64, error) {
			s, err := dls.SolveScenario(p, order, rev, dls.OnePort, dls.Float64)
			if err != nil {
				return 0, err
			}
			return s.Throughput(), nil
		}},
		"bus-fifo": {dls.Request{Platform: bus, Strategy: dls.StrategyBusFIFO}, func() (float64, error) {
			return dls.BusFIFOThroughput(bus)
		}},
		"pair-exhaustive": {dls.Request{Platform: p, Strategy: dls.StrategyPairExhaustive}, func() (float64, error) {
			pr, err := dls.BestPairExhaustive(p, dls.OnePort, dls.Float64)
			if err != nil {
				return 0, err
			}
			return pr.Schedule.Throughput(), nil
		}},
		"fifo-affine": {dls.Request{Platform: p, Strategy: dls.StrategyFIFOAffine, Affine: &aff}, func() (float64, error) {
			ar, err := dls.BestFIFOAffine(p, aff, dls.Float64)
			if err != nil {
				return 0, err
			}
			return ar.Throughput, nil
		}},
	}
	for name, pr := range probes {
		res, err := solver.Solve(ctx, pr.req)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		want, err := pr.want()
		if err != nil {
			t.Errorf("%s (old API): %v", name, err)
			continue
		}
		if diff := res.Throughput - want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s: engine throughput %g != old API %g", name, res.Throughput, want)
		}
	}

	// The FIFO strategy surfaces the paper's sentinel error unwrapped.
	noZ := dls.NewPlatform(dls.Worker{C: 1, W: 1, D: 0.5}, dls.Worker{C: 1, W: 1, D: 0.7})
	if _, err := solver.Solve(ctx, dls.Request{Platform: noZ, Strategy: dls.StrategyFIFO}); err != dls.ErrNoCommonZ {
		t.Errorf("want ErrNoCommonZ through the engine, got %v", err)
	}
}

func TestSolverArithDefault(t *testing.T) {
	// WithArith(Exact) makes zero-valued requests solve exactly; the result
	// must agree with an explicitly exact request.
	solver := mustSolver(t, dls.WithArith(dls.Exact))
	res, err := solver.Solve(context.Background(), dls.Request{Platform: testPlatform(), Strategy: dls.StrategyFIFO})
	if err != nil {
		t.Fatal(err)
	}
	if res.Arith != dls.Exact {
		t.Errorf("resolved arith = %v, want Exact", res.Arith)
	}
	want, err := fmtSolve(dls.Request{Platform: testPlatform(), Strategy: dls.StrategyFIFO, Arith: dls.Exact})
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput != want {
		t.Errorf("default-arith throughput %g != explicit exact %g", res.Throughput, want)
	}
}

func fmtSolve(req dls.Request) (float64, error) {
	res, err := dls.Solve(context.Background(), req)
	if err != nil {
		return 0, err
	}
	return res.Throughput, nil
}

func ExampleSolver_Solve() {
	solver, err := dls.NewSolver(dls.WithCache(128))
	if err != nil {
		panic(err)
	}
	p := dls.NewPlatform(
		dls.Worker{C: 0.1, W: 0.5, D: 0.05},
		dls.Worker{C: 0.2, W: 0.3, D: 0.10},
	)
	res, err := solver.Solve(context.Background(), dls.Request{
		Platform: p,
		Strategy: dls.StrategyFIFO,
		Load:     1000,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("throughput %.4f, makespan for 1000 units %.1f\n", res.Throughput, res.Makespan)
	// Output: throughput 2.7632, makespan for 1000 units 361.9
}

func TestEvalModeKnob(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	p := dls.RandomSpeeds(rng, 6, dls.Heterogeneous).Platform(dls.DefaultApp(100))
	ctx := context.Background()

	// Every backend reaches the same optimum through the engine.
	var ref float64
	for i, mode := range []dls.EvalMode{dls.EvalAuto, dls.EvalDirect, dls.EvalSimplex, dls.EvalExact} {
		res, err := dls.Solve(ctx, dls.Request{Platform: p, Strategy: dls.StrategyIncC, Eval: mode})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.Eval != mode {
			t.Errorf("result echoes eval %v, want %v", res.Eval, mode)
		}
		if i == 0 {
			ref = res.Throughput
		} else if d := res.Throughput - ref; d > 1e-9 || d < -1e-9 {
			t.Errorf("%v: throughput %g != %g", mode, res.Throughput, ref)
		}
	}

	// Unknown eval modes are rejected at prepare time.
	if _, err := dls.Solve(ctx, dls.Request{Platform: p, Strategy: dls.StrategyIncC, Eval: dls.EvalMode(42)}); err == nil {
		t.Error("unknown eval mode must be rejected")
	}

	// EvalExact and Arith Exact normalise to the same request: with a
	// cache, the two spellings share one entry.
	solver := mustSolver(t, dls.WithCache(16))
	if _, err := solver.Solve(ctx, dls.Request{Platform: p, Strategy: dls.StrategyIncC, Eval: dls.EvalExact}); err != nil {
		t.Fatal(err)
	}
	res, err := solver.Solve(ctx, dls.Request{Platform: p, Strategy: dls.StrategyIncC, Arith: dls.Exact})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached {
		t.Error("Arith Exact must hit the cache entry written by EvalExact")
	}
	if res.Arith != dls.Exact || res.Eval != dls.EvalExact {
		t.Errorf("normalised result: arith %v eval %v", res.Arith, res.Eval)
	}

	// Different float backends are distinct cache entries (their results
	// can legitimately differ in degenerate load distributions).
	st := solver.Stats()
	if _, err := solver.Solve(ctx, dls.Request{Platform: p, Strategy: dls.StrategyIncC, Eval: dls.EvalSimplex}); err != nil {
		t.Fatal(err)
	}
	if solver.Stats().Misses != st.Misses+1 {
		t.Error("EvalSimplex must not share a cache entry with EvalExact")
	}
}

func TestParseEvalMode(t *testing.T) {
	m, err := dls.ParseEvalMode("closed-form")
	if err != nil || m != dls.EvalClosedForm {
		t.Errorf("ParseEvalMode(closed-form) = (%v, %v)", m, err)
	}
	if _, err := dls.ParseEvalMode("nope"); err == nil {
		t.Error("unknown backend name must fail")
	}
}
