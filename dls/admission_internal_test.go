package dls

import (
	"math"
	"testing"
	"time"
)

func TestAdaptiveConfigDefaults(t *testing.T) {
	cfg := AdaptiveConfig{}.withDefaults()
	if cfg.MinDelay != 100*time.Microsecond {
		t.Errorf("MinDelay = %v, want 100µs", cfg.MinDelay)
	}
	if cfg.MaxDelay != 5*time.Millisecond {
		t.Errorf("MaxDelay = %v, want 5ms", cfg.MaxDelay)
	}
	if cfg.MaxSize != 512 {
		t.Errorf("MaxSize = %d, want 512", cfg.MaxSize)
	}
	if cfg.Gain != 1.0 {
		t.Errorf("Gain = %g, want 1", cfg.Gain)
	}
	if cfg.SlackFraction != 0.25 {
		t.Errorf("SlackFraction = %g, want 0.25", cfg.SlackFraction)
	}
	if cfg.CostQuantile != 0.5 {
		t.Errorf("CostQuantile = %g, want 0.5", cfg.CostQuantile)
	}

	// Explicit values survive.
	set := AdaptiveConfig{MinDelay: time.Millisecond, MaxSize: 64, CostQuantile: 0.75}.withDefaults()
	if set.MinDelay != time.Millisecond || set.MaxSize != 64 || set.CostQuantile != 0.75 {
		t.Errorf("explicit knobs overwritten: %+v", set)
	}
}

func TestAdaptiveWindowDelayBounds(t *testing.T) {
	a := newAdaptive(AdaptiveConfig{}, SystemClock())
	now := time.Unix(0, 0)

	// Fresh controller, no backlog: the delay floors at MinDelay.
	if d := a.windowDelay(now, time.Time{}); d != a.cfg.MinDelay {
		t.Errorf("idle delay = %v, want MinDelay %v", d, a.cfg.MinDelay)
	}

	// Heavy backlog with observed costs: clamped at MaxDelay.
	for i := 0; i < 50; i++ {
		a.observeSolve(10*time.Millisecond, 1)
	}
	a.inFlight.Store(1000)
	if d := a.windowDelay(now, time.Time{}); d != a.cfg.MaxDelay {
		t.Errorf("backlogged delay = %v, want MaxDelay %v", d, a.cfg.MaxDelay)
	}

	// A near deadline caps the delay at SlackFraction of the slack.
	if d := a.windowDelay(now, now.Add(time.Millisecond)); d != 250*time.Microsecond {
		t.Errorf("slack-capped delay = %v, want 250µs", d)
	}

	// A deadline already behind us leaves no room to wait at all.
	if d := a.windowDelay(now, now.Add(-time.Millisecond)); d != 0 {
		t.Errorf("past-deadline delay = %v, want 0", d)
	}
}

func TestAdaptiveWindowSize(t *testing.T) {
	a := newAdaptive(AdaptiveConfig{}, SystemClock())
	if got := a.windowSize(64); got != 64 {
		t.Errorf("drained size = %d, want base 64", got)
	}
	a.inFlight.Store(3)
	if got := a.windowSize(64); got != 512 {
		t.Errorf("backlogged size = %d, want MaxSize 512", got)
	}
	// A base above MaxSize is never shrunk.
	if got := a.windowSize(1024); got != 1024 {
		t.Errorf("large-base size = %d, want 1024", got)
	}
}

func TestAdaptiveEstCompletion(t *testing.T) {
	a := newAdaptive(AdaptiveConfig{}, SystemClock())
	now := time.Unix(100, 0)

	// No observations: the estimate collapses to "now".
	if got := a.estCompletion(now, time.Time{}, 2); !got.Equal(now) {
		t.Errorf("cold estimate = %v, want %v", got, now)
	}

	for i := 0; i < 50; i++ {
		a.observeSolve(time.Millisecond, 2)
	}
	base := a.estCompletion(now, time.Time{}, 2)
	if !base.After(now) {
		t.Fatalf("warm estimate %v not after now %v", base, now)
	}

	// The pending flush shifts the estimate by exactly the remaining wait.
	shifted := a.estCompletion(now, now.Add(3*time.Millisecond), 2)
	if got := shifted.Sub(base); got != 3*time.Millisecond {
		t.Errorf("flush wait shifted estimate by %v, want 3ms", got)
	}
	// A flush already due adds nothing.
	if got := a.estCompletion(now, now.Add(-time.Millisecond), 2); !got.Equal(base) {
		t.Errorf("overdue flush shifted estimate to %v, want %v", got, base)
	}

	// Backlog pushes the estimate out; more drain workers pull it back.
	a.inFlight.Store(8)
	narrow := a.estCompletion(now, time.Time{}, 2)
	if !narrow.After(base) {
		t.Errorf("backlog did not push the estimate out: %v <= %v", narrow, base)
	}
	wide := a.estCompletion(now, time.Time{}, 8)
	if !narrow.After(wide) {
		t.Errorf("extra workers did not pull the estimate in: %v <= %v", wide, narrow)
	}
}

func TestAdaptiveObserveSolveEWMA(t *testing.T) {
	a := newAdaptive(AdaptiveConfig{}, SystemClock())
	if c := a.estGroupCost(); c != 0 {
		t.Errorf("cold estGroupCost = %v, want 0", c)
	}
	a.observeSolve(time.Millisecond, 10)
	if g := a.state().GroupsPerWindow; g != 10 {
		t.Errorf("first observation GroupsPerWindow = %g, want 10", g)
	}
	a.observeSolve(time.Millisecond, 20)
	if g := a.state().GroupsPerWindow; math.Abs(g-12) > 1e-9 {
		t.Errorf("EWMA GroupsPerWindow = %g, want 12", g)
	}
	if c := a.estGroupCost(); c <= 0 {
		t.Errorf("warm estGroupCost = %v, want > 0", c)
	}

	// Degenerate group counts clamp to one instead of corrupting the EWMA.
	b := newAdaptive(AdaptiveConfig{}, SystemClock())
	b.observeSolve(time.Millisecond, 0)
	if g := b.state().GroupsPerWindow; g != 1 {
		t.Errorf("zero-group observation GroupsPerWindow = %g, want 1", g)
	}
}
