package dls_test

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/dls"
)

// chainStreamRequests builds chain-shaped requests over distinct same-size
// platforms: exactly the workload the SoA batch prepass collapses.
func chainStreamRequests(rng *rand.Rand, n int) []dls.Request {
	reqs := make([]dls.Request, 0, n)
	strategies := []string{dls.StrategyIncC, dls.StrategyIncW, dls.StrategyDecC, dls.StrategyLIFO}
	for i := 0; i < n; i++ {
		p := dls.RandomSpeeds(rng, 6, dls.Heterogeneous).Platform(dls.DefaultApp(100))
		reqs = append(reqs, dls.Request{Platform: p, Strategy: strategies[i%len(strategies)]})
	}
	return reqs
}

// TestSolveStreamTakesBatchPrepass pins the ROADMAP "Streaming prepass"
// item: a burst of chain-shaped requests streamed within one admission
// window must be answered by the SoA batch prepass (observable in Stats),
// not by solo solves, and the results must be byte-identical to direct
// Solve in the original order.
func TestSolveStreamTakesBatchPrepass(t *testing.T) {
	rng := rand.New(rand.NewSource(9090))
	reqs := chainStreamRequests(rng, 16)
	// A wide window so even a heavily loaded CI machine admits the burst
	// into few windows.
	solver := mustSolver(t, dls.WithParallelism(8), dls.WithStreamWindow(50*time.Millisecond))
	in := make(chan dls.Request)
	go func() {
		defer close(in)
		for _, r := range reqs {
			in <- r
		}
	}()
	var got []dls.StreamResult
	for sr := range solver.SolveStream(context.Background(), in) {
		got = append(got, sr)
	}
	if len(got) != len(reqs) {
		t.Fatalf("stream yielded %d results for %d requests", len(got), len(reqs))
	}
	st := solver.Stats()
	if st.Windows == 0 {
		t.Fatal("stream flushed no admission windows")
	}
	if st.BatchedWindows == 0 {
		t.Errorf("no window collapsed >= 2 requests: stats %+v", st)
	}
	if st.PrepassGroups == 0 {
		t.Errorf("streamed chain requests never took the SoA batch prepass: stats %+v", st)
	}
	solo := mustSolver(t)
	for i, sr := range got {
		if sr.Index != i {
			t.Fatalf("stream out of order: position %d has index %d", i, sr.Index)
		}
		if sr.Err != nil {
			t.Fatalf("request %d failed: %v", i, sr.Err)
		}
		want, err := solo.Solve(context.Background(), reqs[i])
		if err != nil {
			t.Fatal(err)
		}
		if sr.Result.Throughput != want.Throughput {
			t.Errorf("request %d: streamed throughput %.17g != solo %.17g", i, sr.Result.Throughput, want.Throughput)
		}
		for w := range want.Schedule.Alpha {
			if sr.Result.Schedule.Alpha[w] != want.Schedule.Alpha[w] {
				t.Errorf("request %d: load of worker %d differs from solo solve", i, w)
			}
		}
	}
}

// TestSolveStreamIdleNoStall: a sequential closed-loop caller (next
// request only after the previous result) must not pay the admission
// window — a request alone in the stream solves directly.
func TestSolveStreamIdleNoStall(t *testing.T) {
	rng := rand.New(rand.NewSource(9096))
	reqs := chainStreamRequests(rng, 20)
	// A window so large that a single timer-based flush would blow the
	// test's deadline if a lone request ever waited it out.
	solver := mustSolver(t, dls.WithParallelism(4), dls.WithStreamWindow(time.Minute))
	in := make(chan dls.Request)
	out := solver.SolveStream(context.Background(), in)
	begin := time.Now()
	for i, r := range reqs {
		in <- r
		sr, ok := <-out
		if !ok {
			t.Fatalf("stream closed after %d results", i)
		}
		if sr.Err != nil {
			t.Fatalf("request %d failed: %v", i, sr.Err)
		}
		if sr.Index != i {
			t.Fatalf("request %d answered as index %d", i, sr.Index)
		}
	}
	close(in)
	if _, ok := <-out; ok {
		t.Fatal("stream yielded an extra result")
	}
	if elapsed := time.Since(begin); elapsed > 30*time.Second {
		t.Fatalf("sequential stream stalled on the admission window: %v for %d chain solves", elapsed, len(reqs))
	}
	if st := solver.Stats(); st.BatchedWindows != 0 {
		t.Errorf("sequential stream batched windows: %+v", st)
	}
}

// TestSolveStreamWindowDisabled: WithStreamWindow(0) restores the solo
// path — no windows are counted and results still arrive in order.
func TestSolveStreamWindowDisabled(t *testing.T) {
	rng := rand.New(rand.NewSource(9091))
	reqs := chainStreamRequests(rng, 8)
	solver := mustSolver(t, dls.WithParallelism(4), dls.WithStreamWindow(0))
	in := make(chan dls.Request)
	go func() {
		defer close(in)
		for _, r := range reqs {
			in <- r
		}
	}()
	n := 0
	for sr := range solver.SolveStream(context.Background(), in) {
		if sr.Index != n {
			t.Fatalf("stream out of order: position %d has index %d", n, sr.Index)
		}
		if sr.Err != nil {
			t.Fatalf("request %d failed: %v", n, sr.Err)
		}
		n++
	}
	if n != len(reqs) {
		t.Fatalf("stream yielded %d results for %d requests", n, len(reqs))
	}
	if st := solver.Stats(); st.Windows != 0 || st.PrepassGroups != 0 {
		t.Errorf("disabled stream window still micro-batched: %+v", st)
	}
}

// TestSolveStreamErrorsStayRaw: per-request stream errors keep their
// sentinel identity through the micro-batcher.
func TestSolveStreamErrorsStayRaw(t *testing.T) {
	// No common z: StrategyFIFO fails with ErrNoCommonZ.
	bad := dls.NewPlatform(
		dls.Worker{C: 0.1, W: 0.5, D: 0.05},
		dls.Worker{C: 0.2, W: 0.3, D: 0.2},
	)
	solver := mustSolver(t, dls.WithStreamWindow(10*time.Millisecond))
	in := make(chan dls.Request, 2)
	// Two copies so at least one travels through the batcher rather than
	// the alone-in-stream solo path.
	in <- dls.Request{Platform: bad, Strategy: dls.StrategyFIFO}
	in <- dls.Request{Platform: bad, Strategy: dls.StrategyFIFO}
	close(in)
	results := make([]dls.StreamResult, 0, 2)
	for sr := range solver.SolveStream(context.Background(), in) {
		results = append(results, sr)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	for i, sr := range results {
		if !errors.Is(sr.Err, dls.ErrNoCommonZ) {
			t.Errorf("stream error %d lost its identity: %v", i, sr.Err)
		}
	}
}

// TestBatcherDedupesWindow: identical requests meeting in one admission
// window are solved once; the duplicates come back Cached even on a
// cache-less solver.
func TestBatcherDedupesWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(9092))
	p := dls.RandomSpeeds(rng, 6, dls.Heterogeneous).Platform(dls.DefaultApp(100))
	solver := mustSolver(t)
	// MaxSize 8 flushes exactly when the whole burst is in; the generous
	// timer is only the fallback for straggling goroutines.
	b := solver.NewBatcher(dls.BatcherConfig{MaxDelay: time.Second, MaxSize: 8})
	defer b.Close()
	var wg sync.WaitGroup
	results := make([]*dls.Result, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := b.Submit(context.Background(), dls.Request{Platform: p, Strategy: dls.StrategyFIFOExhaustive})
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	st := solver.Stats()
	if st.SolvesByStrategy[dls.StrategyFIFOExhaustive] != 1 {
		t.Errorf("identical requests solved %d times, want 1 (stats %+v)",
			st.SolvesByStrategy[dls.StrategyFIFOExhaustive], st)
	}
	cached := 0
	for i, res := range results {
		if res == nil {
			t.Fatalf("submission %d got no result", i)
		}
		if res.Cached {
			cached++
		}
	}
	if cached != 7 {
		t.Errorf("%d duplicates marked Cached, want 7", cached)
	}
	if st.BatchedWindows == 0 || st.BatchedRequests < 8 {
		t.Errorf("burst did not batch: %+v", st)
	}
}

// registerBlockingStrategy registers (once) a strategy that parks until
// its context dies, so tests can wedge a batcher's drain workers
// deterministically.
var registerBlockingStrategy = sync.OnceFunc(func() {
	err := dls.RegisterStrategy("test-block", func(ctx context.Context, _ dls.Request) (*dls.Result, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		panic(err)
	}
})

// TestBatcherSheds: once the drain workers are wedged and the admission
// queue is full, further submissions are rejected immediately with
// ErrOverloaded and counted, instead of queueing unboundedly.
func TestBatcherSheds(t *testing.T) {
	registerBlockingStrategy()
	rng := rand.New(rand.NewSource(9093))
	p := dls.RandomSpeeds(rng, 6, dls.Heterogeneous).Platform(dls.DefaultApp(100))
	solver := mustSolver(t, dls.WithParallelism(1))
	b := solver.NewBatcher(dls.BatcherConfig{MaxDelay: time.Millisecond, MaxSize: 1, QueueCap: 2, Workers: 1})
	defer b.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// 16 concurrent blocking submissions against absorbing capacity 5
	// (1 draining + 1 buffered flush + 1 in the collector + 2 queued):
	// at least 11 must shed no matter the interleaving.
	var wg sync.WaitGroup
	var shed atomic.Uint64
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := b.Submit(ctx, dls.Request{Platform: p, Strategy: "test-block"}); errors.Is(err, dls.ErrOverloaded) {
				shed.Add(1)
			}
		}()
	}
	// Every submission either sheds immediately or parks in the wedged
	// batcher; wait until the shed ones have reported, then release.
	deadline := time.Now().Add(5 * time.Second)
	for shed.Load() < 11 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	wg.Wait()
	if shed.Load() < 11 {
		t.Fatalf("only %d of 16 submissions shed with capacity 5", shed.Load())
	}
	if st := solver.Stats(); st.Shed != shed.Load() {
		t.Errorf("shed counter %d != observed sheds %d", st.Shed, shed.Load())
	}
}

// TestBatcherDirectModeBounds: with MaxDelay = 0 (batching disabled) the
// batcher still bounds concurrency at QueueCap, sheds beyond it, and
// refuses submissions after Close.
func TestBatcherDirectModeBounds(t *testing.T) {
	registerBlockingStrategy()
	rng := rand.New(rand.NewSource(9097))
	p := dls.RandomSpeeds(rng, 4, dls.Heterogeneous).Platform(dls.DefaultApp(100))
	solver := mustSolver(t)
	b := solver.NewBatcher(dls.BatcherConfig{MaxDelay: 0, QueueCap: 2})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	var shed atomic.Uint64
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := b.Submit(ctx, dls.Request{Platform: p, Strategy: "test-block"}); errors.Is(err, dls.ErrOverloaded) {
				shed.Add(1)
			}
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for shed.Load() < 6 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if shed.Load() != 6 {
		t.Fatalf("%d of 8 direct submissions shed with 2 slots, want 6", shed.Load())
	}
	cancel()
	wg.Wait()
	b.Close() // must wait out the in-flight direct solves
	if _, err := b.Submit(context.Background(), dls.Request{Platform: p, Strategy: dls.StrategyIncC}); !errors.Is(err, dls.ErrBatcherClosed) {
		t.Errorf("submit after close: %v, want ErrBatcherClosed", err)
	}
}

// TestBatcherCloseDrains: Close answers every admitted submission before
// returning, and later submissions fail with ErrBatcherClosed.
func TestBatcherCloseDrains(t *testing.T) {
	rng := rand.New(rand.NewSource(9094))
	solver := mustSolver(t)
	// A long window: only Close's drain can flush these.
	b := solver.NewBatcher(dls.BatcherConfig{MaxDelay: time.Hour, MaxSize: 1 << 20})
	var wg sync.WaitGroup
	errs := make([]error, 6)
	for i := 0; i < 6; i++ {
		p := dls.RandomSpeeds(rng, 5, dls.Heterogeneous).Platform(dls.DefaultApp(100))
		wg.Add(1)
		go func(i int, req dls.Request) {
			defer wg.Done()
			_, errs[i] = b.Submit(context.Background(), req)
		}(i, dls.Request{Platform: p, Strategy: dls.StrategyIncC})
	}
	// Let the submissions reach the window before closing.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := b.Stats()
		if st.QueueDepth+st.WindowFill >= 6 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	b.Close()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("drained submission %d failed: %v", i, err)
		}
	}
	if _, err := b.Submit(context.Background(), dls.Request{}); !errors.Is(err, dls.ErrBatcherClosed) {
		t.Errorf("submit after close: %v, want ErrBatcherClosed", err)
	}
}

// TestBatcherHonoursContext: a submission whose context dies while queued
// returns ctx.Err() and is skipped by the flush.
func TestBatcherHonoursContext(t *testing.T) {
	rng := rand.New(rand.NewSource(9095))
	p := dls.RandomSpeeds(rng, 5, dls.Heterogeneous).Platform(dls.DefaultApp(100))
	solver := mustSolver(t)
	b := solver.NewBatcher(dls.BatcherConfig{MaxDelay: time.Hour, MaxSize: 1 << 20})
	defer b.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := b.Submit(ctx, dls.Request{Platform: p, Strategy: dls.StrategyIncC}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled submission returned %v, want context.Canceled", err)
	}
}
