package dls_test

// Shutdown-hardening tests for the admission-window batcher: Close must
// be idempotent however many times and from however many goroutines it
// is called, Submit/Offer after Close must answer a deterministic
// ErrBatcherClosed (never a panic, never a hang), and submissions racing
// Close must either complete or report ErrBatcherClosed — in all three
// batcher modes (goroutine, direct, synchronous), on the virtual clock
// so the races are driven without sleeps.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/dls"
	"repro/internal/sim"
)

func closeTestRequest() dls.Request {
	return dls.Request{Platform: testPlatform(), Strategy: dls.StrategyFIFO, Load: 100}
}

func TestBatcherDoubleCloseAllModes(t *testing.T) {
	solver := mustSolver(t)
	modes := map[string]dls.BatcherConfig{
		"goroutine": {MaxDelay: time.Millisecond, Clock: sim.NewClock()},
		"direct":    {MaxDelay: 0, Clock: sim.NewClock()},
		"sync":      {MaxDelay: time.Millisecond, Clock: sim.NewClock(), OnWindow: func(w *dls.Window) { w.Complete(nil, make([]error, w.Size())) }},
	}
	for name, cfg := range modes {
		t.Run(name, func(t *testing.T) {
			b := solver.NewBatcher(cfg)
			// Sequential double Close.
			b.Close()
			b.Close()
			// Concurrent Close from many goroutines on a fresh batcher.
			b2 := solver.NewBatcher(cfg)
			var wg sync.WaitGroup
			for i := 0; i < 8; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					b2.Close()
				}()
			}
			wg.Wait()
		})
	}
}

func TestBatcherSubmitAfterClose(t *testing.T) {
	solver := mustSolver(t)
	for name, cfg := range map[string]dls.BatcherConfig{
		"goroutine": {MaxDelay: time.Millisecond, Clock: sim.NewClock()},
		"direct":    {MaxDelay: 0, Clock: sim.NewClock()},
	} {
		t.Run(name, func(t *testing.T) {
			b := solver.NewBatcher(cfg)
			b.Close()
			for i := 0; i < 3; i++ {
				if _, err := b.Submit(context.Background(), closeTestRequest()); !errors.Is(err, dls.ErrBatcherClosed) {
					t.Fatalf("Submit %d after Close: err = %v, want ErrBatcherClosed", i, err)
				}
			}
		})
	}
}

func TestBatcherOfferAfterClose(t *testing.T) {
	solver := mustSolver(t)
	b := solver.NewBatcher(dls.BatcherConfig{
		MaxDelay: time.Millisecond,
		Clock:    sim.NewClock(),
		OnWindow: func(w *dls.Window) { w.Complete(nil, make([]error, w.Size())) },
	})
	b.Close()
	if _, err := b.Offer(context.Background(), closeTestRequest(), "", nil); !errors.Is(err, dls.ErrBatcherClosed) {
		t.Fatalf("Offer after Close: err = %v, want ErrBatcherClosed", err)
	}
}

// TestBatcherSubmitCloseRace hammers Submit against Close: every
// submission must resolve — with a result, or with ErrBatcherClosed /
// ErrOverloaded — and none may panic or hang. The virtual clock never
// advances, so completions come purely from the close-drain path
// flushing queued windows.
func TestBatcherSubmitCloseRace(t *testing.T) {
	solver := mustSolver(t)
	for round := 0; round < 10; round++ {
		clk := sim.NewClock()
		b := solver.NewBatcher(dls.BatcherConfig{MaxDelay: time.Hour, MaxSize: 4, Clock: clk})
		const submitters = 8
		errs := make(chan error, submitters)
		var started sync.WaitGroup
		started.Add(submitters)
		for i := 0; i < submitters; i++ {
			go func() {
				started.Done()
				_, err := b.Submit(context.Background(), closeTestRequest())
				errs <- err
			}()
		}
		started.Wait()
		b.Close()
		for i := 0; i < submitters; i++ {
			select {
			case err := <-errs:
				if err != nil && !errors.Is(err, dls.ErrBatcherClosed) && !errors.Is(err, dls.ErrOverloaded) {
					t.Fatalf("round %d: unexpected submit error: %v", round, err)
				}
			case <-time.After(30 * time.Second):
				t.Fatalf("round %d: submission hung across Close", round)
			}
		}
		// The batcher stays answerable (and closed) afterwards.
		if _, err := b.Submit(context.Background(), closeTestRequest()); !errors.Is(err, dls.ErrBatcherClosed) {
			t.Fatalf("round %d: post-race Submit err = %v, want ErrBatcherClosed", round, err)
		}
	}
}

// TestBatcherDirectSubmitCloseRace covers the MaxDelay = 0 path, where
// Submit solves inline under an inflight gate that Close waits on.
func TestBatcherDirectSubmitCloseRace(t *testing.T) {
	solver := mustSolver(t)
	for round := 0; round < 10; round++ {
		b := solver.NewBatcher(dls.BatcherConfig{MaxDelay: 0, QueueCap: 4, Clock: sim.NewClock()})
		const submitters = 8
		errs := make(chan error, submitters)
		for i := 0; i < submitters; i++ {
			go func() {
				_, err := b.Submit(context.Background(), closeTestRequest())
				errs <- err
			}()
		}
		b.Close()
		for i := 0; i < submitters; i++ {
			if err := <-errs; err != nil && !errors.Is(err, dls.ErrBatcherClosed) && !errors.Is(err, dls.ErrOverloaded) {
				t.Fatalf("round %d: unexpected submit error: %v", round, err)
			}
		}
	}
}

// TestBatcherCloseFlushesSyncWindow pins that Close in synchronous mode
// hands the filling window to OnWindow exactly once, so no admitted
// submission is silently dropped.
func TestBatcherCloseFlushesSyncWindow(t *testing.T) {
	solver := mustSolver(t)
	clk := sim.NewClock()
	var flushed int
	var mu sync.Mutex
	b := solver.NewBatcher(dls.BatcherConfig{
		MaxDelay: time.Hour,
		MaxSize:  1 << 20,
		Clock:    clk,
		OnWindow: func(w *dls.Window) {
			mu.Lock()
			flushed += w.Size()
			mu.Unlock()
			w.Complete(nil, make([]error, w.Size()))
		},
	})
	for i := 0; i < 5; i++ {
		if _, err := b.Offer(context.Background(), closeTestRequest(), "", nil); err != nil {
			t.Fatalf("Offer %d: %v", i, err)
		}
	}
	b.Close()
	b.Close() // idempotent: must not double-flush
	mu.Lock()
	defer mu.Unlock()
	if flushed != 5 {
		t.Fatalf("flushed %d submissions through OnWindow, want 5", flushed)
	}
}
