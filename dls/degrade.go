package dls

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// degradeFallbacks maps each exhaustive search strategy to the
// closed-form heuristics a degraded solve may answer with. The
// candidates are the paper's O(p)-solvable orders: INC_C (optimal FIFO
// for z <= 1 by Theorem 1), INC_W, DEC_C (the optimal FIFO send order
// for z > 1) and the optimal LIFO schedule. Order matters only for
// deterministic tie-breaking; the best throughput wins.
var degradeFallbacks = map[string][]string{
	StrategyFIFOExhaustive: {StrategyIncC, StrategyIncW, StrategyDecC},
	StrategyLIFOExhaustive: {StrategyLIFO},
	StrategyPairExhaustive: {StrategyIncC, StrategyIncW, StrategyDecC, StrategyLIFO},
	StrategyPairBB:         {StrategyIncC, StrategyIncW, StrategyDecC, StrategyLIFO},
	StrategyPairFlat:       {StrategyIncC, StrategyIncW, StrategyDecC, StrategyLIFO},
}

// costKey indexes solve-cost EWMAs: exhaustive-search cost is a function
// of the strategy and the worker count (the order space is p!), not of
// the particular platform costs.
type costKey struct {
	strategy string
	p        int
}

// costAlpha is the EWMA smoothing factor for observed solve costs — the
// same weighting the adaptive admission controller uses for its
// group-cost estimates, applied here at solver level.
const costAlpha = 0.3

// costTracker maintains per-(strategy, p) EWMAs of observed solve wall
// time. Cells are float64 bit patterns in atomics, so observation is
// lock-free on the solve hot path.
type costTracker struct {
	m sync.Map // costKey -> *atomic.Uint64 (float64 seconds bits)
}

// observe folds one measured solve duration into the EWMA.
func (t *costTracker) observe(strategy string, p int, d time.Duration) {
	if d <= 0 {
		return
	}
	v, _ := t.m.LoadOrStore(costKey{strategy, p}, new(atomic.Uint64))
	cell := v.(*atomic.Uint64)
	for {
		old := cell.Load()
		next := d.Seconds()
		if old != 0 {
			next = costAlpha*next + (1-costAlpha)*math.Float64frombits(old)
		}
		if cell.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// estimate returns the current EWMA, or 0 when no solve of this shape
// has been observed yet (cold estimates never trigger degradation).
func (t *costTracker) estimate(strategy string, p int) time.Duration {
	v, ok := t.m.Load(costKey{strategy, p})
	if !ok {
		return 0
	}
	bits := v.(*atomic.Uint64).Load()
	if bits == 0 {
		return 0
	}
	return time.Duration(math.Float64frombits(bits) * float64(time.Second))
}

// WithDegradation enables graceful degradation: when a request names an
// exhaustive search strategy, carries a context deadline, and the
// solver's solve-cost EWMA for that (strategy, worker count) predicts
// the search would bust the deadline, the solver answers with the best
// closed-form heuristic instead of timing out. The result carries
// Degraded = true and DegradedTo = the heuristic actually used, and is
// never cached (the cache must only hold true optima). Estimates are
// measured on the system clock, matching context deadlines.
func WithDegradation() Option {
	return func(s *Solver) error {
		s.degrade = true
		return nil
	}
}

// SolveCostEstimate exposes the solver's per-(strategy, worker count)
// solve-cost EWMA: 0 until a solve of that shape completes. Tests and
// operators use it to see what the degradation policy would predict.
func (s *Solver) SolveCostEstimate(strategy string, p int) time.Duration {
	return s.costs.estimate(strategy, p)
}

// maybeDegrade decides whether to answer req with a closed-form
// heuristic instead of running its exhaustive search. It reports
// (result, true) when degradation applied. ctx already carries the
// effective deadline (solver timeout and/or caller deadline).
func (s *Solver) maybeDegrade(ctx context.Context, req Request) (*Result, bool) {
	if !s.degrade {
		return nil, false
	}
	fallbacks, ok := degradeFallbacks[req.Strategy]
	if !ok {
		return nil, false
	}
	deadline, ok := ctx.Deadline()
	if !ok {
		return nil, false
	}
	est := s.costs.estimate(req.Strategy, req.Platform.P())
	if est <= 0 || time.Until(deadline) >= est {
		return nil, false
	}
	var (
		best     *Result
		bestName string
		bestThr  float64
	)
	for _, name := range fallbacks {
		fb := req
		fb.Strategy = name
		fb.Send, fb.Return = nil, nil
		fbReq, fn, err := s.prepare(fb)
		if err != nil {
			continue
		}
		res, err := fn(ctx, fbReq)
		if err != nil || res == nil || res.Schedule == nil {
			continue
		}
		if thr := res.Schedule.Throughput(); best == nil || thr > bestThr {
			best, bestName, bestThr = res, name, thr
		}
	}
	if best == nil {
		// Every heuristic failed (e.g. no common z): fall through to the
		// search and let it race the deadline.
		return nil, false
	}
	s.countSolve(req.Strategy)
	s.degraded.Add(1)
	s.degradedBy.Add(bestName, 1)
	best.Degraded = true
	best.DegradedTo = bestName
	return best, true
}
