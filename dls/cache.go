package dls

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// resultCache is a size-bounded LRU of solved results, keyed by the request
// cache key (platform fingerprint, strategy, model, arithmetic, orders,
// affine costs). Entries are stored as engine-owned copies: get returns a
// fresh clone so callers can never mutate cached state.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	evictions atomic.Uint64
}

type cacheEntry struct {
	key string
	res *Result
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// get returns a clone of the cached result for key, if present.
func (c *resultCache) get(key string) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res.clone(), true
}

// has reports whether key is cached, without cloning the entry or
// promoting its recency (a membership peek for the batch prepass; the
// pool path's real get still bumps the LRU order).
func (c *resultCache) has(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.items[key]
	return ok
}

// put stores a clone of res under key, evicting the least recently used
// entry when the cache is full.
func (c *resultCache) put(key string, res *Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).res = res.clone()
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: res.clone()})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions.Add(1)
	}
}
