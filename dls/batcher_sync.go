package dls

import (
	"context"
	"fmt"
	"time"

	"repro/internal/obs"
)

// This file is the synchronous (simulation) driving surface of Batcher,
// active when BatcherConfig.OnWindow is set: no goroutines, no channels —
// the owner delivers arrivals with Offer, fires the window timer with
// ExpireWindow when its clock reaches WindowDeadline, and completes
// flushed windows with Window.Complete at whatever (virtual) time the
// service model dictates. Admission, window bookkeeping, the adaptive
// policy, SLO shedding and violation accounting are the same code paths
// the goroutine mode runs; only the transport differs. internal/sim
// drives millions of virtual arrivals through this surface in seconds of
// wall clock. The surface is intentionally single-threaded: the owner
// must serialize all calls.

// Pending is the reply slot of one synchronously offered submission.
type Pending struct{ sub *submission }

// Done reports whether the submission has been answered (shed, errored
// or completed).
func (p *Pending) Done() bool {
	select {
	case <-p.sub.ready:
		return true
	default:
		return false
	}
}

// Err returns the submission's error (nil until Done, or on success).
func (p *Pending) Err() error { return p.sub.err }

// Result returns the submission's result, if any.
func (p *Pending) Result() *Result { return p.sub.res }

// Class returns the SLO class the submission was admitted under.
func (p *Pending) Class() SLOClass { return p.sub.class }

// Deadline returns the submission's absolute deadline (zero: none).
func (p *Pending) Deadline() time.Time { return p.sub.deadline }

// SetTag attaches an owner value to the submission; Window.Tag returns
// it at completion. The simulator uses it to link completions back to
// its arrival records without a side table.
func (p *Pending) SetTag(v any) { p.sub.tag = v }

// Tag returns the value set with SetTag.
func (p *Pending) Tag() any { return p.sub.tag }

// Window is one flushed admission window in synchronous mode, handed to
// BatcherConfig.OnWindow. The owner inspects its composition (size,
// dedup groups, classes) to model service time, then answers it with
// Complete.
type Window struct {
	b       *Batcher
	subs    []*submission
	groups  int
	flushed time.Time
}

// Size returns the number of submissions in the window.
func (w *Window) Size() int { return len(w.subs) }

// Groups returns the number of deduplicated problems in the window —
// the solves a real SolveBatch would run after dedup.
func (w *Window) Groups() int { return w.groups }

// FlushedAt returns the window's flush time on the batcher clock.
func (w *Window) FlushedAt() time.Time { return w.flushed }

// Request returns the i-th submission's request.
func (w *Window) Request(i int) Request { return w.subs[i].req }

// Class returns the i-th submission's SLO class.
func (w *Window) Class(i int) SLOClass { return w.subs[i].class }

// Deadline returns the i-th submission's absolute deadline (zero: none).
func (w *Window) Deadline(i int) time.Time { return w.subs[i].deadline }

// Tag returns the i-th submission's owner tag (see Pending.SetTag).
func (w *Window) Tag(i int) any { return w.subs[i].tag }

// Complete answers every submission of the window at the current clock
// time: results[i]/errs[i] answer submission i (both may be nil — the
// simulator models cost, not solutions), deadline violations are counted
// per class against the clock, and the adaptive controller observes the
// window's service time (now - FlushedAt) over its dedup groups. Either
// slice may be nil; non-nil slices must have length Size.
func (w *Window) Complete(results []*Result, errs []error) error {
	if results != nil && len(results) != len(w.subs) {
		return fmt.Errorf("dls: Window.Complete: %d results for %d submissions", len(results), len(w.subs))
	}
	if errs != nil && len(errs) != len(w.subs) {
		return fmt.Errorf("dls: Window.Complete: %d errors for %d submissions", len(errs), len(w.subs))
	}
	b := w.b
	var done time.Time
	for i, sub := range w.subs {
		if results != nil {
			sub.res = results[i]
		}
		if errs != nil {
			sub.err = errs[i]
		}
		if len(sub.traces) > 0 {
			if done.IsZero() {
				done = b.clock.Now()
			}
			sub.stage("solve", sub.flushAt, done)
		}
		b.accountCompletion(sub, sub.err)
		close(sub.ready)
	}
	b.outstanding -= len(w.subs)
	if b.adapt != nil {
		b.adapt.inFlight.Add(-1)
		b.adapt.observeSolve(b.clock.Now().Sub(w.flushed), w.groups)
	}
	return nil
}

// Offer admits or sheds one submission now, without blocking: it is the
// synchronous-mode counterpart of Submit. The returned Pending is
// answered immediately on shed, or by Window.Complete after the window
// carrying it is flushed. Admission is bounded by QueueCap outstanding
// (admitted, not yet completed) submissions; beyond it, and for
// deadline-carrying requests the adaptive policy predicts cannot meet
// their SLO, the submission is shed with ErrOverloaded /
// ErrSLOUnmeetable exactly like the goroutine mode. tag is attached
// before any shed or flush can observe the submission (see Pending.Tag
// and BatcherConfig.OnShed) — Offer can flush a full window before it
// returns, so setting the tag afterwards would be too late.
func (b *Batcher) Offer(ctx context.Context, req Request, class string, tag any) (*Pending, error) {
	if b.cfg.OnWindow == nil {
		return nil, fmt.Errorf("dls: Offer on an asynchronous batcher (use Submit)")
	}
	if b.closed {
		return nil, ErrBatcherClosed
	}
	c, err := b.resolveClass(class)
	if err != nil {
		return nil, err
	}
	sub := &submission{ctx: ctx, req: req, class: c, ready: make(chan struct{}), tag: tag}
	if ts := obs.Traces(ctx); len(ts) > 0 {
		// Synchronous admission is immediate: submit and admit coincide,
		// so queue_wait is zero and window_wait spans Offer → flush.
		sub.traces = ts
		sub.submitAt = b.clock.Now()
		sub.admitAt = sub.submitAt
	}
	if c.Deadline > 0 {
		sub.deadline = b.clock.Now().Add(c.Deadline)
	} else if d, ok := ctx.Deadline(); ok {
		sub.deadline = d
	}
	p := &Pending{sub: sub}
	if b.outstanding >= b.cfg.QueueCap {
		b.recordShed(sub, ErrOverloaded)
		return p, nil
	}
	if !b.admitOrShed(sub, b.syncDeadline) {
		return p, nil
	}
	b.outstanding++
	b.syncWin = append(b.syncWin, sub)
	b.fill.Store(int64(len(b.syncWin)))
	if len(b.syncWin) == 1 {
		b.syncSize = b.windowSize()
		b.syncDeadline = b.clock.Now().Add(b.windowDelay(sub))
	}
	if len(b.syncWin) >= b.syncSize {
		b.flushSync()
	}
	return p, nil
}

// WindowDeadline returns the flush time of the currently filling window;
// ok is false when no window is open. The owner is expected to call
// ExpireWindow when its clock reaches the deadline.
func (b *Batcher) WindowDeadline() (time.Time, bool) {
	if b.cfg.OnWindow == nil || len(b.syncWin) == 0 {
		return time.Time{}, false
	}
	return b.syncDeadline, true
}

// ExpireWindow fires the window timer: the filling window, if any, is
// flushed through OnWindow regardless of fill.
func (b *Batcher) ExpireWindow() {
	if b.cfg.OnWindow != nil && len(b.syncWin) > 0 {
		b.flushSync()
	}
}

// flushSync flushes the filling window through OnWindow, applying the
// same doomed-request shedding and flush bookkeeping as the goroutine
// collector.
func (b *Batcher) flushSync() {
	win := b.dropDoomed(b.syncWin)
	b.outstanding -= len(b.syncWin) - len(win)
	b.syncWin = nil
	b.syncDeadline = time.Time{}
	b.fill.Store(0)
	if len(win) == 0 {
		return
	}
	id := b.countFlush(win)
	b.stageFlush(win, id)
	b.cfg.OnWindow(&Window{b: b, subs: win, groups: countGroups(win), flushed: b.clock.Now()})
}
