package dls

import (
	"context"

	"repro/internal/core"
	"repro/internal/multiround"
)

// This file exposes the extensions built on top of the paper's framework:
// the two-port baselines of the companion paper, the affine cost model of
// the related-work discussion, and uniform multi-round distribution.

// Affine holds per-worker fixed costs for the affine cost model: In/Out
// are message start-up latencies, Comp a computation overhead. The paper
// cites the affine star problem as NP-hard; StrategyFIFOAffine enumerates
// participant subsets.
type Affine = core.Affine

// AffineResult is the outcome of an affine-model solve.
type AffineResult = core.AffineResult

// ZeroAffine returns an all-zero affine extension for p workers (reduces
// to the paper's linear model).
func ZeroAffine(p int) Affine { return core.ZeroAffine(p) }

// affineOf adapts an engine result to the historical (result, error) shape
// of the deprecated affine wrappers.
func affineOf(res *Result, err error) (*AffineResult, error) {
	if err != nil {
		return nil, err
	}
	return res.Affine, nil
}

// SolveScenarioAffine computes optimal loads for a fixed scenario under
// the affine cost model. Enrolled workers pay their fixed costs even at
// zero load.
//
// Deprecated: use [Solver.Solve] (or [Solve]) with [StrategyScenarioAffine].
func SolveScenarioAffine(p *Platform, aff Affine, send, ret Order, model Model, arith Arith) (*AffineResult, error) {
	return affineOf(Solve(context.Background(), Request{
		Platform: p, Strategy: StrategyScenarioAffine,
		Affine: &aff, Send: send, Return: ret, Model: model, Arith: arith,
	}))
}

// BestFIFOAffine searches participant subsets (p ≤ 20) for the best
// one-port FIFO schedule under the affine model, keeping workers in
// non-decreasing-c order.
//
// Deprecated: use [Solver.Solve] (or [Solve]) with [StrategyFIFOAffine];
// the engine adds cancellation and deadlines for this 2^p search.
func BestFIFOAffine(p *Platform, aff Affine, arith Arith) (*AffineResult, error) {
	return affineOf(Solve(context.Background(), Request{
		Platform: p, Strategy: StrategyFIFOAffine, Affine: &aff, Arith: arith,
	}))
}

// OptimalFIFOTwoPort computes the optimal two-port FIFO schedule (the
// companion-paper baseline).
//
// Deprecated: use [Solver.Solve] (or [Solve]) with [StrategyFIFO] and
// Model: [TwoPort].
func OptimalFIFOTwoPort(p *Platform, arith Arith) (*Schedule, error) {
	return scheduleOf(Solve(context.Background(), Request{Platform: p, Strategy: StrategyFIFO, Model: TwoPort, Arith: arith}))
}

// OptimalLIFOTwoPort computes the optimal two-port LIFO schedule; it
// coincides with the one-port LIFO optimum since every LIFO schedule obeys
// the one-port model.
//
// Deprecated: use [Solver.Solve] (or [Solve]) with [StrategyLIFO] and
// Model: [TwoPort].
func OptimalLIFOTwoPort(p *Platform, arith Arith) (*Schedule, error) {
	return scheduleOf(Solve(context.Background(), Request{Platform: p, Strategy: StrategyLIFO, Model: TwoPort, Arith: arith}))
}

// OnePortPenalty returns ρ_two-port / ρ_one-port ≥ 1 for FIFO scheduling
// on the platform: the throughput cost of the one-port restriction.
func OnePortPenalty(p *Platform, arith Arith) (float64, error) {
	return core.OnePortPenalty(p, arith)
}

// MultiRoundParams configures a uniform multi-round FIFO evaluation.
type MultiRoundParams = multiround.Params

// MultiRoundFromSchedule seeds multi-round parameters from a one-round
// schedule computed by the engine (loads and FIFO order are taken from the
// schedule; Rounds starts at 1).
func MultiRoundFromSchedule(p *Platform, s *Schedule, latency float64) MultiRoundParams {
	return multiround.FromSchedule(p, s, latency)
}

// MultiRoundMakespan computes the makespan of distributing the per-worker
// loads in R uniform rounds under the one-port model with per-message
// latency (analytically; see internal/multiround).
func MultiRoundMakespan(p MultiRoundParams) (float64, error) {
	return multiround.Makespan(p)
}

// MultiRoundSweep returns the makespan for every round count 1..maxRounds.
func MultiRoundSweep(p MultiRoundParams, maxRounds int) ([]float64, error) {
	return multiround.Sweep(p, maxRounds)
}

// BestRounds returns the round count minimising the multi-round makespan.
func BestRounds(p MultiRoundParams, maxRounds int) (int, float64, error) {
	return multiround.BestRounds(p, maxRounds)
}
