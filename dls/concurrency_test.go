package dls_test

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"repro/dls"
)

// TestCacheConcurrentHammer drives one cached Solver from 32 goroutines
// with overlapping fingerprints (24 distinct problems, cache capacity 16,
// so hits, misses and evictions all occur under contention) and checks
// that every concurrent result is byte-identical to a serial reference
// and that the counters stay mutually consistent. Run with -race in CI.
func TestCacheConcurrentHammer(t *testing.T) {
	rng := rand.New(rand.NewSource(3232))
	var reqs []dls.Request
	for i := 0; i < 8; i++ {
		p := dls.RandomSpeeds(rng, 6, dls.Heterogeneous).Platform(dls.DefaultApp(100))
		reqs = append(reqs,
			dls.Request{Platform: p, Strategy: dls.StrategyIncC},
			dls.Request{Platform: p, Strategy: dls.StrategyLIFO},
			dls.Request{Platform: p, Strategy: dls.StrategyFIFOExhaustive},
		)
	}

	// Serial reference on a cache-less solver.
	serial := mustSolver(t)
	want := make([]*dls.Result, len(reqs))
	for i, req := range reqs {
		res, err := serial.Solve(context.Background(), req)
		if err != nil {
			t.Fatalf("serial request %d: %v", i, err)
		}
		want[i] = res
	}

	const (
		goroutines = 32
		iterations = 50
	)
	solver := mustSolver(t, dls.WithCache(16))
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(3300 + g)))
			for it := 0; it < iterations; it++ {
				i := rng.Intn(len(reqs))
				res, err := solver.Solve(context.Background(), reqs[i])
				if err != nil {
					t.Errorf("goroutine %d: request %d: %v", g, i, err)
					return
				}
				if res.Throughput != want[i].Throughput {
					t.Errorf("goroutine %d: request %d: throughput %.17g != serial %.17g",
						g, i, res.Throughput, want[i].Throughput)
					return
				}
				for w := range want[i].Schedule.Alpha {
					if res.Schedule.Alpha[w] != want[i].Schedule.Alpha[w] {
						t.Errorf("goroutine %d: request %d: load %d differs from serial", g, i, w)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	st := solver.Stats()
	lookups := goroutines * iterations
	if st.Hits+st.Misses != uint64(lookups) {
		t.Errorf("hits %d + misses %d != lookups %d", st.Hits, st.Misses, lookups)
	}
	if st.Hits == 0 {
		t.Error("no cache hits across 1600 overlapping lookups")
	}
	// 24 distinct problems over capacity 16 under churn must evict.
	if st.Evictions == 0 {
		t.Errorf("no evictions with %d problems over capacity 16", len(reqs))
	}
	if st.Misses != st.Solves {
		t.Errorf("misses %d != solves %d: cache-miss accounting drifted", st.Misses, st.Solves)
	}
	var byStrategy uint64
	for _, n := range st.SolvesByStrategy {
		byStrategy += n
	}
	if byStrategy != st.Solves {
		t.Errorf("per-strategy solves %d != total %d", byStrategy, st.Solves)
	}
	// Hit-rate sanity: with 16 of 24 problems resident the steady-state
	// hit rate is well above half; anything below says the LRU is
	// thrashing pathologically.
	if ratio := float64(st.Hits) / float64(lookups); ratio < 0.3 {
		t.Errorf("hit rate %.2f suspiciously low (hits %d, misses %d, evictions %d)",
			ratio, st.Hits, st.Misses, st.Evictions)
	}
}
