package dls

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

// prepassRequests builds a mixed workload of chain-shaped requests (the
// SoA prepass collapses them) and non-chain requests (pool path).
func prepassRequests(rng *rand.Rand, platforms int) []Request {
	var reqs []Request
	for i := 0; i < platforms; i++ {
		p := RandomSpeeds(rng, 6, Heterogeneous).Platform(DefaultApp(100))
		reqs = append(reqs,
			Request{Platform: p, Strategy: StrategyIncC, Load: 500},
			Request{Platform: p, Strategy: StrategyIncW},
			Request{Platform: p, Strategy: StrategyDecC},
			Request{Platform: p, Strategy: StrategyLIFO},
			Request{Platform: p, Strategy: StrategyFIFOOrder, Send: p.ByW()},
			Request{Platform: p, Strategy: StrategyScenario, Send: p.ByC(), Return: p.ByC().Reverse()},
			// Not chain-shaped: exercises the pool path next to the prepass.
			Request{Platform: p, Strategy: StrategyFIFOExhaustive},
		)
	}
	return reqs
}

// TestSolveBatchChainPrepassMatchesSolve: every request of a batch that
// the SoA chain prepass answers must carry the same throughput and loads
// as an individual Solve of the same request (which runs the strategy).
func TestSolveBatchChainPrepassMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(8080))
	reqs := prepassRequests(rng, 4)
	solver, err := NewSolver(WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	results, err := solver.SolveBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	single, err := NewSolver()
	if err != nil {
		t.Fatal(err)
	}
	for i, req := range reqs {
		want, err := single.Solve(context.Background(), req)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		got := results[i]
		if got == nil {
			t.Fatalf("request %d: no batch result", i)
		}
		if math.Abs(got.Throughput-want.Throughput) > 1e-9*(1+got.Throughput+want.Throughput) {
			t.Errorf("request %d (%s): batch throughput %.12g != solve %.12g", i, req.Strategy, got.Throughput, want.Throughput)
		}
		if got.Schedule == nil || want.Schedule == nil {
			t.Fatalf("request %d: missing schedule", i)
		}
		for w := range want.Schedule.Alpha {
			if diff := got.Schedule.Alpha[w] - want.Schedule.Alpha[w]; math.Abs(diff) > 1e-9*(1+want.Throughput) {
				t.Errorf("request %d (%s): load of worker %d: batch %.12g != solve %.12g",
					i, req.Strategy, w, got.Schedule.Alpha[w], want.Schedule.Alpha[w])
			}
		}
		if req.Load > 0 && math.Abs(got.Makespan-want.Makespan) > 1e-9*(1+want.Makespan) {
			t.Errorf("request %d: batch makespan %.12g != solve %.12g", i, got.Makespan, want.Makespan)
		}
	}
}

// TestSolveBatchChainPrepassStats: prepass-answered groups still count as
// solves/misses, duplicates are marked Cached, and a warm cache serves
// repeat batches without re-solving.
func TestSolveBatchChainPrepassStats(t *testing.T) {
	rng := rand.New(rand.NewSource(8081))
	p := RandomSpeeds(rng, 6, Heterogeneous).Platform(DefaultApp(100))
	reqs := []Request{
		{Platform: p, Strategy: StrategyIncC},
		{Platform: p, Strategy: StrategyIncW},
		{Platform: p, Strategy: StrategyIncC}, // duplicate of #0
	}
	solver, err := NewSolver(WithCache(8))
	if err != nil {
		t.Fatal(err)
	}
	results, err := solver.SolveBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if results[2].Cached != true {
		t.Error("duplicate request not marked Cached")
	}
	if results[0].Cached {
		t.Error("leader request marked Cached on a cold cache")
	}
	st := solver.Stats()
	if st.Solves != 2 {
		t.Errorf("Solves = %d, want 2 (one per distinct problem)", st.Solves)
	}
	// Second, warm batch: both distinct problems served from the cache.
	results2, err := solver.SolveBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results2 {
		if !r.Cached {
			t.Errorf("warm batch request %d not served from cache", i)
		}
	}
	if st2 := solver.Stats(); st2.Solves != 2 {
		t.Errorf("warm batch re-solved: Solves = %d, want 2", st2.Solves)
	}
}

// TestSolveBatchPrepassDeterminism: output is byte-identical across
// parallelism settings with the prepass active.
func TestSolveBatchPrepassDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(8082))
	reqs := prepassRequests(rng, 3)
	var ref []*Result
	for _, par := range []int{1, 4, 8} {
		solver, err := NewSolver(WithParallelism(par))
		if err != nil {
			t.Fatal(err)
		}
		results, err := solver.SolveBatch(context.Background(), reqs)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = results
			continue
		}
		for i := range results {
			if results[i].Throughput != ref[i].Throughput {
				t.Fatalf("parallelism %d: request %d throughput %.17g != %.17g", par, i, results[i].Throughput, ref[i].Throughput)
			}
			for w := range results[i].Schedule.Alpha {
				if results[i].Schedule.Alpha[w] != ref[i].Schedule.Alpha[w] {
					t.Fatalf("parallelism %d: request %d load %d differs", par, i, w)
				}
			}
		}
	}
}

// TestSolveBatchPrepassHonoursCancellation: a done context must fail every
// request with ctx.Err(), including the chain-shaped ones the prepass
// would otherwise answer before the pool runs.
func TestSolveBatchPrepassHonoursCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(8083))
	p := RandomSpeeds(rng, 6, Heterogeneous).Platform(DefaultApp(100))
	reqs := []Request{
		{Platform: p, Strategy: StrategyIncC},
		{Platform: p, Strategy: StrategyIncW},
	}
	solver, err := NewSolver()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := solver.SolveBatch(ctx, reqs)
	if err == nil {
		t.Fatal("cancelled SolveBatch returned no error")
	}
	for i, r := range results {
		if r != nil {
			t.Errorf("request %d produced a result under a cancelled context", i)
		}
	}
}
