package dls

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Errors reported by Batcher.Submit.
var (
	// ErrOverloaded is returned when the batcher's admission queue is full
	// (or, under adaptive admission, when the request provably cannot meet
	// its SLO deadline) and the submission is shed instead of queued.
	// Serving layers map it to 429 Too Many Requests.
	ErrOverloaded = errors.New("dls: batcher overloaded: admission queue full")
	// ErrSLOUnmeetable is the deadline-aware shed: the adaptive admission
	// policy estimated that the request could not complete before its SLO
	// deadline and dropped it instead of burning a solve on a certain
	// violation. It wraps ErrOverloaded, so serving layers that switch on
	// errors.Is(err, ErrOverloaded) keep answering 429.
	ErrSLOUnmeetable = fmt.Errorf("%w: SLO deadline unmeetable", ErrOverloaded)
	// ErrBatcherClosed is returned by Submit after Close.
	ErrBatcherClosed = errors.New("dls: batcher closed")
	// ErrUnknownClass rejects a submission naming an SLO class that is
	// not configured (see BatcherConfig.Classes).
	ErrUnknownClass = errors.New("dls: unknown SLO class")
)

// BatcherConfig configures an admission-window micro-batcher.
type BatcherConfig struct {
	// MaxDelay is the admission window: a flush happens at most MaxDelay
	// after the first request of a window was admitted, trading up to that
	// much latency for batch collapse. MaxDelay = 0 disables
	// micro-batching: Submit solves directly (bounded by QueueCap
	// concurrent solves, shedding beyond), so a serving layer can expose
	// batching as a knob that can be turned off.
	MaxDelay time.Duration
	// MaxSize flushes a window early once it holds this many requests.
	// Default 64. Under Adaptive admission this is the no-backlog base
	// size; the effective threshold grows toward Adaptive.MaxSize when
	// the drain workers are behind.
	MaxSize int
	// QueueCap bounds admission. A Submit that finds the queue full (or,
	// with MaxDelay = 0, QueueCap solves in flight) is shed with
	// ErrOverloaded instead of blocking, so overload surfaces immediately
	// rather than as unbounded latency. Default 1024.
	QueueCap int
	// Workers bounds how many flushed windows are solved concurrently
	// (each window is one SolveBatch, which fans out over the solver's own
	// worker pool). Default 2: one window solving, one filling.
	Workers int
	// Clock is the time source for the window timer, deadline propagation
	// and SLO accounting. Nil means SystemClock(); internal/sim injects a
	// virtual clock.
	Clock Clock
	// Classes are the SLO classes SubmitSLO resolves against. Optional;
	// plain Submit works regardless.
	Classes []SLOClass
	// Adaptive, when set, replaces the fixed MaxDelay/MaxSize window with
	// the SLO-aware adaptive policy (see AdaptiveConfig). MaxDelay must
	// be > 0 (the adaptive policy is meaningless in direct mode).
	Adaptive *AdaptiveConfig
	// OnFlush, when set, observes the size of every flushed window (a
	// metrics hook; called from the collector goroutine, must not block).
	OnFlush func(size int)
	// OnShed, when set, observes every shed submission: its class name,
	// owner tag (synchronous mode; nil otherwise) and the shed error
	// (ErrOverloaded, or ErrSLOUnmeetable for deadline-aware drops).
	// Called from whichever goroutine sheds; must not block.
	OnShed func(class string, tag any, err error)
	// OnWindow switches the batcher into synchronous (simulation) mode:
	// NewBatcher spawns no goroutines, and the owner drives admission
	// explicitly — Offer admits or sheds, WindowDeadline exposes the
	// pending flush time, ExpireWindow fires it, and every flushed window
	// is handed to OnWindow instead of the drain pool; the owner answers
	// it with Window.Complete. The window bookkeeping, adaptive policy,
	// SLO shedding and violation accounting are the same code the
	// goroutine mode runs; only the channel/goroutine transport around
	// them is absent. internal/sim replays millions of virtual arrivals
	// through this surface.
	OnWindow func(*Window)
}

// withDefaults fills the zero fields.
func (cfg BatcherConfig) withDefaults() BatcherConfig {
	if cfg.MaxSize <= 0 {
		cfg.MaxSize = 64
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 1024
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.Clock == nil {
		cfg.Clock = SystemClock()
	}
	return cfg
}

// BatcherStats is a point-in-time view of a batcher's admission state; the
// cumulative counters (windows, batched requests, shed submissions) live
// in the owning solver's Stats.
type BatcherStats struct {
	// QueueDepth is the number of admitted submissions not yet collected
	// into a window (in synchronous mode: admitted submissions in flushed
	// windows not yet completed).
	QueueDepth int
	// WindowFill is the size of the currently filling window.
	WindowFill int
}

// submission is one queued request and its reply slot.
type submission struct {
	ctx      context.Context
	req      Request
	class    SLOClass
	deadline time.Time // zero: best effort
	res      *Result
	err      error
	ready    chan struct{}
	tag      any // owner value (synchronous mode; see Pending.SetTag)

	// Tracing (internal/obs): the traces riding ctx at submit time, and
	// the batcher-clock timestamps bracketing the depth-0 stages —
	// queue_wait (submit → admitted into a window), window_wait (admitted
	// → flush) and solve (flush → answer). All zero when no trace rides
	// the context: the hot path then skips every stage call.
	traces   []*obs.Trace
	submitAt time.Time
	admitAt  time.Time
	flushAt  time.Time
}

// stage records a depth-0 stage on every trace following the submission.
func (sub *submission) stage(name string, start, end time.Time, attrs ...obs.Attr) {
	for _, t := range sub.traces {
		t.StageAt(0, name, start, end, attrs...)
	}
}

// Batcher is an admission-window micro-batcher over one Solver: Submit
// queues a request into a bounded window that is flushed — when the size
// threshold is reached or the window delay has passed since the window
// opened — as a single SolveBatch call, so chain-shaped requests arriving
// together collapse into the engine's structure-of-arrays prepass and
// duplicate requests dedupe against each other, instead of solving one by
// one. Callers that can see their own concurrency (SolveStream) bypass
// the window for requests travelling alone; the Batcher itself always
// waits out the window, which is what makes its batch sizes stable under
// load.
//
// With BatcherConfig.Adaptive set, the window delay and size adapt to
// observed backlog and solve cost, and requests that provably cannot meet
// their SLO deadline are shed early; see AdaptiveConfig.
//
// A Batcher is safe for concurrent use. Close drains: admitted requests
// are still solved and answered, then the workers exit.
type Batcher struct {
	s     *Solver
	cfg   BatcherConfig
	clock Clock
	adapt *adaptive // nil unless cfg.Adaptive

	mu     sync.RWMutex // guards closed vs. new admissions
	closed bool
	queue  chan *submission

	direct   chan struct{} // MaxDelay = 0: concurrency slots instead of a queue
	inflight sync.WaitGroup

	flushes chan []*submission
	fill    atomic.Int64
	wg      sync.WaitGroup // collector + drain workers

	// Synchronous mode state (OnWindow != nil); single-threaded by
	// contract, no locking.
	syncWin      []*submission
	syncDeadline time.Time
	syncSize     int
	outstanding  int
}

// NewBatcher builds an admission-window micro-batcher over the solver.
func (s *Solver) NewBatcher(cfg BatcherConfig) *Batcher {
	cfg = cfg.withDefaults()
	b := &Batcher{s: s, cfg: cfg, clock: cfg.Clock}
	if cfg.Adaptive != nil && cfg.MaxDelay > 0 {
		b.adapt = newAdaptive(*cfg.Adaptive, cfg.Clock)
	}
	if cfg.OnWindow != nil {
		return b // synchronous mode: the owner pumps
	}
	if cfg.MaxDelay <= 0 {
		b.direct = make(chan struct{}, cfg.QueueCap)
		return b
	}
	b.queue = make(chan *submission, cfg.QueueCap)
	b.flushes = make(chan []*submission, cfg.Workers)
	b.wg.Add(1 + cfg.Workers)
	go b.collect()
	for w := 0; w < cfg.Workers; w++ {
		go b.drain()
	}
	return b
}

// AdaptiveState snapshots the adaptive admission controller; ok reports
// false when the batcher runs the fixed window.
func (b *Batcher) AdaptiveState() (AdaptiveState, bool) {
	if b.adapt == nil {
		return AdaptiveState{}, false
	}
	return b.adapt.state(), true
}

// Class resolves a configured SLO class by name ("" is the zero,
// best-effort class); the error wraps ErrUnknownClass for names not in
// BatcherConfig.Classes.
func (b *Batcher) Class(name string) (SLOClass, error) { return b.resolveClass(name) }

// resolveClass finds a configured SLO class by name ("" is the zero,
// best-effort class).
func (b *Batcher) resolveClass(name string) (SLOClass, error) {
	if name == "" {
		return SLOClass{}, nil
	}
	for _, c := range b.cfg.Classes {
		if c.Name == name {
			return c, nil
		}
	}
	return SLOClass{}, fmt.Errorf("%w %q", ErrUnknownClass, name)
}

// newSubmission builds a submission under its class: the class deadline
// (measured on the batcher clock) is merged into the context so the
// solve is cancelled at the deadline, and recorded for SLO shedding and
// violation accounting. A context that already carries an earlier
// deadline keeps it.
func (b *Batcher) newSubmission(ctx context.Context, req Request, class SLOClass) (*submission, context.CancelFunc) {
	sub := &submission{ctx: ctx, req: req, class: class, ready: make(chan struct{})}
	if ts := obs.Traces(ctx); len(ts) > 0 {
		sub.traces = ts
		sub.submitAt = b.clock.Now()
	}
	cancel := context.CancelFunc(func() {})
	if class.Deadline > 0 {
		sub.deadline = b.clock.Now().Add(class.Deadline)
		sub.ctx, cancel = b.clock.ContextWithDeadline(ctx, sub.deadline)
	} else if d, ok := ctx.Deadline(); ok {
		sub.deadline = d
	}
	return sub, cancel
}

// recordShed counts one shed submission (per class too) and answers it.
func (b *Batcher) recordShed(sub *submission, err error) {
	b.s.shed.Add(1)
	if errors.Is(err, ErrSLOUnmeetable) {
		b.s.shedSLO.Add(1)
	}
	b.s.shedByClass.Add(sub.class.Name, 1)
	if b.cfg.OnShed != nil {
		b.cfg.OnShed(sub.class.Name, sub.tag, err)
	}
	sub.err = err
	close(sub.ready)
}

// Submit queues req and blocks until its window is solved, returning the
// request's own result (duplicates within a window are deduplicated by
// SolveBatch and come back marked Cached). If admission is full the
// request is shed immediately with ErrOverloaded. A ctx that expires
// while the request is queued abandons it (the flush skips submissions
// whose context is already done); a ctx that expires mid-solve returns
// ctx.Err() without waiting for the window.
func (b *Batcher) Submit(ctx context.Context, req Request) (*Result, error) {
	return b.submitClass(ctx, req, SLOClass{})
}

// SubmitSLO is Submit under a named SLO class (see BatcherConfig.Classes):
// the class deadline bounds the solve, drives the adaptive policy's
// deadline-aware shedding, and keys the per-class shed/violation counters
// in the solver's Stats.
func (b *Batcher) SubmitSLO(ctx context.Context, req Request, class string) (*Result, error) {
	c, err := b.resolveClass(class)
	if err != nil {
		return nil, err
	}
	return b.submitClass(ctx, req, c)
}

func (b *Batcher) submitClass(ctx context.Context, req Request, class SLOClass) (*Result, error) {
	if b.cfg.OnWindow != nil {
		return nil, fmt.Errorf("dls: Submit on a synchronous batcher (drive it with Offer)")
	}
	sub, cancel := b.newSubmission(ctx, req, class)
	defer cancel()
	if b.direct != nil {
		return b.submitDirect(sub)
	}
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return nil, ErrBatcherClosed
	}
	select {
	case b.queue <- sub:
		b.mu.RUnlock()
	default:
		b.mu.RUnlock()
		b.recordShed(sub, ErrOverloaded)
		return nil, ErrOverloaded
	}
	select {
	case <-sub.ready:
		return sub.res, sub.err
	case <-sub.ctx.Done():
		return nil, sub.ctx.Err()
	}
}

// submitDirect is the MaxDelay = 0 path: no window, one direct solve,
// still bounded (QueueCap concurrent solves, shed beyond) and still
// honouring Close.
func (b *Batcher) submitDirect(sub *submission) (*Result, error) {
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return nil, ErrBatcherClosed
	}
	select {
	case b.direct <- struct{}{}:
	default:
		b.mu.RUnlock()
		b.recordShed(sub, ErrOverloaded)
		return nil, ErrOverloaded
	}
	b.inflight.Add(1)
	b.mu.RUnlock()
	defer func() {
		<-b.direct
		b.inflight.Done()
	}()
	var start time.Time
	if len(sub.traces) > 0 {
		start = b.clock.Now()
	}
	res, err := b.s.Solve(sub.ctx, sub.req)
	if len(sub.traces) > 0 {
		now := b.clock.Now()
		// Direct mode has no window: the slot wait is the queue stage and
		// the solve runs immediately after.
		sub.stage("queue_wait", sub.submitAt, start)
		sub.stage("solve", start, now)
	}
	b.accountCompletion(sub, err)
	return res, err
}

// accountCompletion records the SLO outcome of one answered submission.
func (b *Batcher) accountCompletion(sub *submission, err error) {
	if sub.deadline.IsZero() || err != nil {
		return
	}
	if b.clock.Now().After(sub.deadline) {
		b.s.violationsByClass.Add(sub.class.Name, 1)
	}
}

// Close stops admission and drains: every queued submission is still
// flushed, solved and answered before Close returns. Further Submits
// report ErrBatcherClosed. In synchronous mode the filling window is
// flushed through OnWindow; completing it stays with the owner.
func (b *Batcher) Close() {
	b.mu.Lock()
	if !b.closed {
		b.closed = true
		if b.queue != nil {
			close(b.queue)
		}
		if b.cfg.OnWindow != nil && len(b.syncWin) > 0 {
			b.flushSync()
		}
	}
	b.mu.Unlock()
	b.inflight.Wait()
	b.wg.Wait()
}

// Stats returns the batcher's admission gauges.
func (b *Batcher) Stats() BatcherStats {
	if b.cfg.OnWindow != nil {
		return BatcherStats{
			QueueDepth: b.outstanding - len(b.syncWin),
			WindowFill: len(b.syncWin),
		}
	}
	if b.direct != nil {
		return BatcherStats{QueueDepth: len(b.direct)}
	}
	return BatcherStats{
		QueueDepth: len(b.queue),
		WindowFill: int(b.fill.Load()),
	}
}

// windowDelay decides the admission delay for a window opened by sub.
func (b *Batcher) windowDelay(sub *submission) time.Duration {
	if b.adapt != nil {
		return b.adapt.windowDelay(b.clock.Now(), sub.deadline)
	}
	return b.cfg.MaxDelay
}

// windowSize decides the early-flush threshold for the current window.
func (b *Batcher) windowSize() int {
	if b.adapt != nil {
		return b.adapt.windowSize(b.cfg.MaxSize)
	}
	return b.cfg.MaxSize
}

// admitOrShed applies the deadline-aware admission check to a collected
// submission: a deadline-carrying request whose estimated completion
// (remaining window wait, backlog of windows ahead, its own solve)
// already exceeds its deadline is shed now rather than solved into a
// certain violation. flushAt is the scheduled flush of the filling
// window (zero when this submission opens one). Reports whether the
// submission was admitted.
func (b *Batcher) admitOrShed(sub *submission, flushAt time.Time) bool {
	if b.adapt == nil || sub.deadline.IsZero() {
		return true
	}
	now := b.clock.Now()
	if b.adapt.estCompletion(now, flushAt, b.cfg.Workers).After(sub.deadline) {
		b.recordShed(sub, ErrSLOUnmeetable)
		return false
	}
	return true
}

// dropDoomed re-applies the deadline check at flush time — the estimate
// may have soured while the window filled — and sheds submissions that
// can no longer make their deadline. Returns the surviving window.
func (b *Batcher) dropDoomed(win []*submission) []*submission {
	if b.adapt == nil {
		return win
	}
	now := b.clock.Now()
	est := b.adapt.estCompletion(now, time.Time{}, b.cfg.Workers)
	live := win[:0]
	for _, sub := range win {
		if !sub.deadline.IsZero() && est.After(sub.deadline) {
			b.recordShed(sub, ErrSLOUnmeetable)
			continue
		}
		live = append(live, sub)
	}
	return live
}

// countFlush runs the shared flush bookkeeping (counters, hooks,
// adaptive backlog) for a window about to leave the collector, and
// returns the window's id (the solver-wide flush sequence number, which
// trace stages annotate).
func (b *Batcher) countFlush(win []*submission) uint64 {
	if b.cfg.OnFlush != nil {
		b.cfg.OnFlush(len(win))
	}
	id := b.s.windows.Add(1)
	if len(win) >= 2 {
		b.s.batchedWindows.Add(1)
		b.s.batchedRequests.Add(uint64(len(win)))
	}
	if b.adapt != nil {
		b.adapt.inFlight.Add(1)
	}
	return id
}

// stageFlush records the admission stages of a flushed window on every
// traced submission — queue_wait (submit → admission) and window_wait
// (admission → this flush, annotated with the window id and fill) — and
// stamps flushAt, where the solve stage picks up.
func (b *Batcher) stageFlush(win []*submission, id uint64) {
	var now time.Time
	for _, sub := range win {
		if len(sub.traces) == 0 {
			continue
		}
		if now.IsZero() {
			now = b.clock.Now()
		}
		sub.flushAt = now
		sub.stage("queue_wait", sub.submitAt, sub.admitAt)
		sub.stage("window_wait", sub.admitAt, now,
			obs.Uint64("window", id), obs.Int("fill", len(win)))
	}
}

// collect runs the admission loop: it gathers submissions into a window
// and flushes when the window is full or when the window delay has
// passed since the window opened.
func (b *Batcher) collect() {
	defer b.wg.Done()
	defer close(b.flushes)
	var (
		win     []*submission
		size    int
		flushAt time.Time
		timer   Timer
		fire    <-chan time.Time
	)
	flush := func() {
		if timer != nil {
			timer.Stop()
			timer, fire = nil, nil
		}
		flushAt = time.Time{}
		win = b.dropDoomed(win)
		if len(win) == 0 {
			win = nil
			b.fill.Store(0)
			return
		}
		id := b.countFlush(win)
		b.stageFlush(win, id)
		b.flushes <- win
		win = nil
		b.fill.Store(0)
	}
	for {
		select {
		case sub, ok := <-b.queue:
			if !ok {
				flush()
				return
			}
			if err := sub.ctx.Err(); err != nil {
				// Abandoned while queued; answer without admitting so the
				// adaptive estimates only see live traffic.
				sub.err = err
				close(sub.ready)
				continue
			}
			if !b.admitOrShed(sub, flushAt) {
				continue
			}
			if len(sub.traces) > 0 {
				sub.admitAt = b.clock.Now()
			}
			win = append(win, sub)
			b.fill.Store(int64(len(win)))
			if len(win) == 1 {
				size = b.windowSize()
				delay := b.windowDelay(sub)
				flushAt = b.clock.Now().Add(delay)
				timer = b.clock.NewTimer(delay)
				fire = timer.C()
			}
			if len(win) >= size {
				flush()
			}
		case <-fire:
			timer, fire = nil, nil
			flush()
		}
	}
}

// drain solves flushed windows.
func (b *Batcher) drain() {
	defer b.wg.Done()
	for win := range b.flushes {
		b.solveWindow(win)
	}
}

// countGroups counts the deduplicated problems of a window — the number
// of solves its SolveBatch actually runs — for the adaptive cost model.
func countGroups(win []*submission) int {
	seen := make(map[string]struct{}, len(win))
	groups := 0
	for _, sub := range win {
		if sub.req.Platform == nil {
			groups++ // invalid; errors individually, never solves
			continue
		}
		key := sub.req.cacheKey()
		if _, ok := seen[key]; !ok {
			seen[key] = struct{}{}
			groups++
		}
	}
	return groups
}

// solveWindow answers every submission of one window with a single
// SolveBatch call. Submissions whose context is already done are answered
// with their ctx.Err() without solving; the batch context propagates the
// callers' deadlines and cancellations (see windowContext).
func (b *Batcher) solveWindow(win []*submission) {
	groups := 0
	start := b.clock.Now()
	defer func() {
		if b.adapt != nil {
			b.adapt.inFlight.Add(-1)
			b.adapt.observeSolve(b.clock.Now().Sub(start), groups)
		}
	}()
	live := win[:0]
	for _, sub := range win {
		if err := sub.ctx.Err(); err != nil {
			sub.err = err
			close(sub.ready)
			continue
		}
		live = append(live, sub)
	}
	if len(live) == 0 {
		return
	}
	groups = countGroups(live)
	ctx, cancel := b.windowContext(live)
	if cancel != nil {
		defer cancel()
	}
	reqs := make([]Request, len(live))
	var traces [][]*obs.Trace
	for i, sub := range live {
		reqs[i] = sub.req
		if len(sub.traces) > 0 {
			if traces == nil {
				traces = make([][]*obs.Trace, len(live))
			}
			traces[i] = sub.traces
		}
	}
	results, errs := b.s.solveBatchTraced(ctx, reqs, traces)
	var done time.Time
	if traces != nil {
		done = b.clock.Now()
	}
	for i, sub := range live {
		sub.res, sub.err = results[i], errs[i]
		if len(sub.traces) > 0 {
			sub.stage("solve", sub.flushAt, done)
		}
		b.accountCompletion(sub, sub.err)
		close(sub.ready)
	}
}

// windowContext derives the context a window is solved under. A window
// whose submissions share one context (the SolveStream case) solves under
// it directly. A mixed window solves under a derived context that carries
// the latest deadline across the window — no caller's budget is silently
// extended past the solver timeout — and is cancelled once every caller
// has gone away, so abandoned windows stop burning CPU. If any submission
// is uncancellable (context.Background), the window is too.
func (b *Batcher) windowContext(live []*submission) (context.Context, context.CancelFunc) {
	shared := live[0].ctx
	for _, sub := range live[1:] {
		if sub.ctx != shared {
			shared = nil
			break
		}
	}
	if shared != nil {
		return shared, nil
	}
	var latest time.Time
	haveDeadlines := true
	for _, sub := range live {
		if sub.ctx.Done() == nil {
			// An uncancellable caller keeps the window alive regardless of
			// the others, so there is nothing to watch.
			return context.Background(), nil
		}
		if d, ok := sub.ctx.Deadline(); ok {
			if d.After(latest) {
				latest = d
			}
		} else {
			haveDeadlines = false
		}
	}
	var (
		ctx    context.Context
		cancel context.CancelFunc
	)
	if haveDeadlines {
		ctx, cancel = b.clock.ContextWithDeadline(context.Background(), latest)
	} else {
		ctx, cancel = context.WithCancel(context.Background())
	}
	// Cancel the window once every caller is gone. AfterFunc registrations
	// instead of watcher goroutines: windows flush at serving rate, and
	// the returned cleanup drops the registrations with the window.
	remaining := new(atomic.Int64)
	remaining.Store(int64(len(live)))
	stops := make([]func() bool, len(live))
	for i, sub := range live {
		stops[i] = context.AfterFunc(sub.ctx, func() {
			if remaining.Add(-1) == 0 {
				cancel()
			}
		})
	}
	cleanup := func() {
		for _, stop := range stops {
			stop()
		}
		cancel()
	}
	return ctx, cleanup
}

// String renders the batcher configuration compactly (for logs).
func (b *Batcher) String() string {
	mode := "fixed"
	if b.adapt != nil {
		mode = "adaptive"
	}
	return fmt.Sprintf("batcher(window=%v size=%d queue=%d workers=%d mode=%s)",
		b.cfg.MaxDelay, b.cfg.MaxSize, b.cfg.QueueCap, b.cfg.Workers, mode)
}
