package dls

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Errors reported by Batcher.Submit.
var (
	// ErrOverloaded is returned when the batcher's admission queue is full
	// and the submission is shed instead of queued. Serving layers map it
	// to 429 Too Many Requests.
	ErrOverloaded = errors.New("dls: batcher overloaded: admission queue full")
	// ErrBatcherClosed is returned by Submit after Close.
	ErrBatcherClosed = errors.New("dls: batcher closed")
)

// BatcherConfig configures an admission-window micro-batcher.
type BatcherConfig struct {
	// MaxDelay is the admission window: a flush happens at most MaxDelay
	// after the first request of a window was admitted, trading up to that
	// much latency for batch collapse. MaxDelay = 0 disables
	// micro-batching: Submit solves directly (bounded by QueueCap
	// concurrent solves, shedding beyond), so a serving layer can expose
	// batching as a knob that can be turned off.
	MaxDelay time.Duration
	// MaxSize flushes a window early once it holds this many requests.
	// Default 64.
	MaxSize int
	// QueueCap bounds admission. A Submit that finds the queue full (or,
	// with MaxDelay = 0, QueueCap solves in flight) is shed with
	// ErrOverloaded instead of blocking, so overload surfaces immediately
	// rather than as unbounded latency. Default 1024.
	QueueCap int
	// Workers bounds how many flushed windows are solved concurrently
	// (each window is one SolveBatch, which fans out over the solver's own
	// worker pool). Default 2: one window solving, one filling.
	Workers int
	// OnFlush, when set, observes the size of every flushed window (a
	// metrics hook; called from the collector goroutine, must not block).
	OnFlush func(size int)
}

// withDefaults fills the zero fields.
func (cfg BatcherConfig) withDefaults() BatcherConfig {
	if cfg.MaxSize <= 0 {
		cfg.MaxSize = 64
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 1024
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	return cfg
}

// BatcherStats is a point-in-time view of a batcher's admission state; the
// cumulative counters (windows, batched requests, shed submissions) live
// in the owning solver's Stats.
type BatcherStats struct {
	// QueueDepth is the number of admitted submissions not yet collected
	// into a window.
	QueueDepth int
	// WindowFill is the size of the currently filling window.
	WindowFill int
}

// submission is one queued request and its reply slot.
type submission struct {
	ctx   context.Context
	req   Request
	res   *Result
	err   error
	ready chan struct{}
}

// Batcher is an admission-window micro-batcher over one Solver: Submit
// queues a request into a bounded window that is flushed — when MaxSize
// requests are waiting or MaxDelay after the window opened — as a single
// SolveBatch call, so chain-shaped requests arriving together collapse
// into the engine's structure-of-arrays prepass and duplicate requests
// dedupe against each other, instead of solving one by one. Callers that
// can see their own concurrency (SolveStream) bypass the window for
// requests travelling alone; the Batcher itself always waits out the
// window, which is what makes its batch sizes stable under load.
//
// A Batcher is safe for concurrent use. Close drains: admitted requests
// are still solved and answered, then the workers exit.
type Batcher struct {
	s   *Solver
	cfg BatcherConfig

	mu     sync.RWMutex // guards closed vs. new admissions
	closed bool
	queue  chan *submission

	direct   chan struct{} // MaxDelay = 0: concurrency slots instead of a queue
	inflight sync.WaitGroup

	flushes chan []*submission
	fill    atomic.Int64
	wg      sync.WaitGroup // collector + drain workers
}

// NewBatcher builds an admission-window micro-batcher over the solver.
func (s *Solver) NewBatcher(cfg BatcherConfig) *Batcher {
	cfg = cfg.withDefaults()
	b := &Batcher{s: s, cfg: cfg}
	if cfg.MaxDelay <= 0 {
		b.direct = make(chan struct{}, cfg.QueueCap)
		return b
	}
	b.queue = make(chan *submission, cfg.QueueCap)
	b.flushes = make(chan []*submission, cfg.Workers)
	b.wg.Add(1 + cfg.Workers)
	go b.collect()
	for w := 0; w < cfg.Workers; w++ {
		go b.drain()
	}
	return b
}

// Submit queues req and blocks until its window is solved, returning the
// request's own result (duplicates within a window are deduplicated by
// SolveBatch and come back marked Cached). If admission is full the
// request is shed immediately with ErrOverloaded. A ctx that expires
// while the request is queued abandons it (the flush skips submissions
// whose context is already done); a ctx that expires mid-solve returns
// ctx.Err() without waiting for the window.
func (b *Batcher) Submit(ctx context.Context, req Request) (*Result, error) {
	if b.direct != nil {
		return b.submitDirect(ctx, req)
	}
	sub := &submission{ctx: ctx, req: req, ready: make(chan struct{})}
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return nil, ErrBatcherClosed
	}
	select {
	case b.queue <- sub:
		b.mu.RUnlock()
	default:
		b.mu.RUnlock()
		b.s.shed.Add(1)
		return nil, ErrOverloaded
	}
	select {
	case <-sub.ready:
		return sub.res, sub.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// submitDirect is the MaxDelay = 0 path: no window, one direct solve,
// still bounded (QueueCap concurrent solves, shed beyond) and still
// honouring Close.
func (b *Batcher) submitDirect(ctx context.Context, req Request) (*Result, error) {
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return nil, ErrBatcherClosed
	}
	select {
	case b.direct <- struct{}{}:
	default:
		b.mu.RUnlock()
		b.s.shed.Add(1)
		return nil, ErrOverloaded
	}
	b.inflight.Add(1)
	b.mu.RUnlock()
	defer func() {
		<-b.direct
		b.inflight.Done()
	}()
	return b.s.Solve(ctx, req)
}

// Close stops admission and drains: every queued submission is still
// flushed, solved and answered before Close returns. Further Submits
// report ErrBatcherClosed.
func (b *Batcher) Close() {
	b.mu.Lock()
	if !b.closed {
		b.closed = true
		if b.queue != nil {
			close(b.queue)
		}
	}
	b.mu.Unlock()
	b.inflight.Wait()
	b.wg.Wait()
}

// Stats returns the batcher's admission gauges.
func (b *Batcher) Stats() BatcherStats {
	if b.direct != nil {
		return BatcherStats{QueueDepth: len(b.direct)}
	}
	return BatcherStats{
		QueueDepth: len(b.queue),
		WindowFill: int(b.fill.Load()),
	}
}

// collect runs the admission loop: it gathers submissions into a window
// and flushes when the window is full or when MaxDelay has passed since
// the window opened.
func (b *Batcher) collect() {
	defer b.wg.Done()
	defer close(b.flushes)
	var (
		win   []*submission
		timer *time.Timer
		fire  <-chan time.Time
	)
	flush := func() {
		if timer != nil {
			timer.Stop()
			timer, fire = nil, nil
		}
		if len(win) == 0 {
			return
		}
		if b.cfg.OnFlush != nil {
			b.cfg.OnFlush(len(win))
		}
		b.s.windows.Add(1)
		if len(win) >= 2 {
			b.s.batchedWindows.Add(1)
			b.s.batchedRequests.Add(uint64(len(win)))
		}
		b.flushes <- win
		win = nil
		b.fill.Store(0)
	}
	for {
		select {
		case sub, ok := <-b.queue:
			if !ok {
				flush()
				return
			}
			win = append(win, sub)
			b.fill.Store(int64(len(win)))
			if len(win) == 1 {
				timer = time.NewTimer(b.cfg.MaxDelay)
				fire = timer.C
			}
			if len(win) >= b.cfg.MaxSize {
				flush()
			}
		case <-fire:
			timer, fire = nil, nil
			flush()
		}
	}
}

// drain solves flushed windows.
func (b *Batcher) drain() {
	defer b.wg.Done()
	for win := range b.flushes {
		b.solveWindow(win)
	}
}

// solveWindow answers every submission of one window with a single
// SolveBatch call. Submissions whose context is already done are answered
// with their ctx.Err() without solving; the batch context propagates the
// callers' deadlines and cancellations (see windowContext).
func (b *Batcher) solveWindow(win []*submission) {
	live := win[:0]
	for _, sub := range win {
		if err := sub.ctx.Err(); err != nil {
			sub.err = err
			close(sub.ready)
			continue
		}
		live = append(live, sub)
	}
	if len(live) == 0 {
		return
	}
	ctx, cancel := b.windowContext(live)
	if cancel != nil {
		defer cancel()
	}
	reqs := make([]Request, len(live))
	for i, sub := range live {
		reqs[i] = sub.req
	}
	results, errs := b.s.solveBatch(ctx, reqs)
	for i, sub := range live {
		sub.res, sub.err = results[i], errs[i]
		close(sub.ready)
	}
}

// windowContext derives the context a window is solved under. A window
// whose submissions share one context (the SolveStream case) solves under
// it directly. A mixed window solves under a derived context that carries
// the latest deadline across the window — no caller's budget is silently
// extended past the solver timeout — and is cancelled once every caller
// has gone away, so abandoned windows stop burning CPU. If any submission
// is uncancellable (context.Background), the window is too.
func (b *Batcher) windowContext(live []*submission) (context.Context, context.CancelFunc) {
	shared := live[0].ctx
	for _, sub := range live[1:] {
		if sub.ctx != shared {
			shared = nil
			break
		}
	}
	if shared != nil {
		return shared, nil
	}
	var latest time.Time
	haveDeadlines := true
	for _, sub := range live {
		if sub.ctx.Done() == nil {
			// An uncancellable caller keeps the window alive regardless of
			// the others, so there is nothing to watch.
			return context.Background(), nil
		}
		if d, ok := sub.ctx.Deadline(); ok {
			if d.After(latest) {
				latest = d
			}
		} else {
			haveDeadlines = false
		}
	}
	var (
		ctx    context.Context
		cancel context.CancelFunc
	)
	if haveDeadlines {
		ctx, cancel = context.WithDeadline(context.Background(), latest)
	} else {
		ctx, cancel = context.WithCancel(context.Background())
	}
	// Cancel the window once every caller is gone. AfterFunc registrations
	// instead of watcher goroutines: windows flush at serving rate, and
	// the returned cleanup drops the registrations with the window.
	remaining := new(atomic.Int64)
	remaining.Store(int64(len(live)))
	stops := make([]func() bool, len(live))
	for i, sub := range live {
		stops[i] = context.AfterFunc(sub.ctx, func() {
			if remaining.Add(-1) == 0 {
				cancel()
			}
		})
	}
	cleanup := func() {
		for _, stop := range stops {
			stop()
		}
		cancel()
	}
	return ctx, cleanup
}

// String renders the batcher configuration compactly (for logs).
func (b *Batcher) String() string {
	return fmt.Sprintf("batcher(window=%v size=%d queue=%d workers=%d)",
		b.cfg.MaxDelay, b.cfg.MaxSize, b.cfg.QueueCap, b.cfg.Workers)
}
