// Package dls is the public API of the divisible-load scheduling library
// reproducing Beaumont, Marchal, Rehn and Robert, "FIFO scheduling of
// divisible loads with return messages under the one-port model" (INRIA
// RR-5738 / IPDPS 2006).
//
// The library schedules one-round divisible-load applications on
// heterogeneous master-worker star platforms where workers send results
// back to the master and the master can be engaged in at most one
// communication at a time (the one-port model).
//
// # The engine
//
// All scheduling goes through one engine: a [Solver] resolves a [Request]
// — platform, strategy, communication model, LP arithmetic — against an
// extensible strategy registry and returns a [Result]:
//
//	solver, err := dls.NewSolver(dls.WithCache(256), dls.WithParallelism(8))
//	if err != nil { ... }
//	p := dls.NewPlatform(
//	    dls.Worker{C: 0.1, W: 0.5, D: 0.05},
//	    dls.Worker{C: 0.2, W: 0.3, D: 0.10},
//	)
//	res, err := solver.Solve(ctx, dls.Request{
//	    Platform: p,
//	    Strategy: dls.StrategyFIFO, // Theorem 1 + Proposition 1
//	})
//	if err != nil { ... }
//	fmt.Println(res.Throughput, res.Schedule.Participants())
//
// Built-in strategies cover the whole paper: the optimal FIFO and LIFO
// schedules ([StrategyFIFO], [StrategyLIFO]), the Section 5 heuristics
// ([StrategyIncC], [StrategyIncW], [StrategyDecC]), fixed-order and
// arbitrary (σ1, σ2) scenarios ([StrategyFIFOOrder], [StrategyLIFOOrder],
// [StrategyScenario]), the Theorem 2 bus construction ([StrategyBusFIFO]),
// the exhaustive optimality oracles ([StrategyFIFOExhaustive],
// [StrategyLIFOExhaustive], [StrategyPairExhaustive]) and the affine-model
// extensions ([StrategyFIFOAffine], [StrategyScenarioAffine]). New
// heuristics plug in with [RegisterStrategy] without touching the engine.
//
// The engine adds what the historical free functions could not: context
// cancellation and [WithTimeout] deadlines for the exponential exhaustive
// searches, an LRU result cache ([WithCache]) keyed by platform
// fingerprint, and concurrent batch solving ([Solver.SolveBatch],
// [Solver.SolveStream]) with deterministic, parallelism-independent output
// ordering ([WithParallelism]). An admission-window micro-batcher
// ([Solver.NewBatcher]) coalesces concurrent submissions into SolveBatch
// calls — [Solver.SolveStream] rides it ([WithStreamWindow]), and the
// dlsd serving layer builds on it for load shedding and deadline
// propagation. [Solver.Stats] exposes the engine's counters (cache
// activity, solves by strategy, batch collapses); [Request] is JSON
// round-trippable for the HTTP wire format.
//
// # Scenario evaluation
//
// Every fixed communication scenario is evaluated by the internal/eval
// pipeline: closed-form load recurrences and a direct tight-system solver
// with full optimality certificates where they apply, the simplex (float64
// or exact rational) otherwise. [Request.Eval] selects the backend
// ([EvalAuto], the default, tiers them); the backends agree to 1e-9 by
// property test, so the knob trades only speed, not results.
//
// The pre-engine free functions (OptimalFIFO, OptimalLIFO, IncC, ...)
// remain as thin deprecated wrappers over the engine.
//
// All schedule-producing strategies verify their output against an
// independent feasibility checker before returning it.
package dls

import (
	"context"
	"math/big"
	"math/rand"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/mmapp"
	"repro/internal/platform"
	"repro/internal/rounding"
	"repro/internal/schedule"
	"repro/internal/trace"
)

// Core model types, re-exported from the internal packages.
type (
	// Platform is a master-worker star platform (Section 2.1).
	Platform = platform.Platform
	// Worker holds one worker's linear costs: C per unit sent to it, W per
	// unit computed, D per unit returned.
	Worker = platform.Worker
	// Order is a permutation of worker indices.
	Order = platform.Order
	// Speeds describes a platform by per-worker speed multipliers.
	Speeds = platform.Speeds
	// App converts worker speeds into costs for the matrix-product
	// application of Section 5 (z = 1/2).
	App = platform.App
	// Family selects a random-platform family from Section 5.3.
	Family = platform.Family
	// Schedule is a one-round schedule in the paper's canonical form.
	Schedule = schedule.Schedule
	// WorkerTimeline holds one worker's derived event dates.
	WorkerTimeline = schedule.WorkerTimeline
	// Model selects the communication model.
	Model = schedule.Model
	// Arith selects float64 or exact rational LP arithmetic.
	Arith = core.Arith
	// Trace is a timed activity record of a simulated run.
	Trace = trace.Trace
	// SimulationParams configures a virtual-cluster execution.
	SimulationParams = mmapp.Params
	// SimulationResult is the outcome of a virtual-cluster execution.
	SimulationResult = mmapp.Result
	// PairResult is the outcome of the exhaustive permutation-pair search.
	PairResult = core.PairResult
)

// Communication models.
const (
	// OnePort: the master sends or receives one message at a time.
	OnePort = schedule.OnePort
	// TwoPort: the master may send and receive simultaneously.
	TwoPort = schedule.TwoPort
)

// LP arithmetic modes.
const (
	// Float64 uses the fast float64 evaluation pipeline.
	Float64 = core.Float64
	// Exact uses the exact rational simplex.
	Exact = core.Exact
)

// EvalMode selects the scenario-evaluation backend of a Request (see
// internal/eval): closed-form load recurrences, the direct tight-system
// solver, the simplex, or the tiered automatic composition.
type EvalMode = eval.Mode

// Evaluation backends for Request.Eval.
const (
	// EvalAuto tiers the backends: closed form → direct → simplex. The
	// zero value, and the default everywhere.
	EvalAuto = eval.Auto
	// EvalClosedForm uses only the closed-form backend (FIFO/LIFO load
	// recurrences, Theorem 2 on buses) and fails where no closed form
	// applies.
	EvalClosedForm = eval.ClosedForm
	// EvalDirect uses the tight-system Gaussian elimination, falling back
	// to the simplex when its optimality certificate fails.
	EvalDirect = eval.Direct
	// EvalSimplex always solves the full LP with the float64 simplex.
	EvalSimplex = eval.Simplex
	// EvalExact always solves the full LP in exact rational arithmetic
	// (equivalent to Arith == Exact).
	EvalExact = eval.ExactRational
)

// ParseEvalMode parses an evaluation-backend name: "auto", "closed-form",
// "direct", "simplex" or "exact".
func ParseEvalMode(s string) (EvalMode, error) { return eval.ParseMode(s) }

// Random platform families (Section 5.3.2).
const (
	// Homogeneous platforms share one communication and one computation
	// speed.
	Homogeneous = platform.Homogeneous
	// HomCommHeteroComp platforms share the communication speed only.
	HomCommHeteroComp = platform.HomCommHeteroComp
	// Heterogeneous platforms draw every speed independently.
	Heterogeneous = platform.Heterogeneous
)

// ErrNoCommonZ is returned by the StrategyFIFO solve (and the deprecated
// OptimalFIFO wrapper) when d_i/c_i is not constant.
var ErrNoCommonZ = core.ErrNoCommonZ

// NewPlatform builds a star platform from explicit worker costs.
func NewPlatform(workers ...Worker) *Platform { return platform.New(workers...) }

// NewBus builds a bus platform: common link costs c and d, individual
// computation costs ws.
func NewBus(c, d float64, ws ...float64) *Platform { return platform.NewBus(c, d, ws...) }

// DefaultApp returns the Section 5 matrix-product application for matrices
// of the given size, with the calibrated reference bandwidth and flop rate.
func DefaultApp(size int) App { return platform.DefaultApp(size) }

// RandomSpeeds draws a random platform description of p workers from the
// given family using rng (speeds are integers 1..10 as in the paper).
func RandomSpeeds(rng *rand.Rand, p int, family Family) Speeds {
	return platform.RandomSpeeds(rng, p, family)
}

// Fig14Speeds returns the Section 5.3.4 participation-study platform with
// the slow worker's communication speed x.
func Fig14Speeds(x float64) Speeds { return platform.Fig14Speeds(x) }

// scheduleOf adapts an engine result to the historical (schedule, error)
// shape of the deprecated wrappers.
func scheduleOf(res *Result, err error) (*Schedule, error) {
	if err != nil {
		return nil, err
	}
	return res.Schedule, nil
}

// OptimalFIFO computes an optimal one-port FIFO schedule (Theorem 1 +
// Proposition 1), including resource selection. The platform must have a
// common ratio z = d_i/c_i.
//
// Deprecated: use [Solver.Solve] (or [Solve]) with [StrategyFIFO].
func OptimalFIFO(p *Platform, arith Arith) (*Schedule, error) {
	return scheduleOf(Solve(context.Background(), Request{Platform: p, Strategy: StrategyFIFO, Arith: arith}))
}

// OptimalLIFO computes the optimal one-port LIFO schedule.
//
// Deprecated: use [Solver.Solve] (or [Solve]) with [StrategyLIFO].
func OptimalLIFO(p *Platform, arith Arith) (*Schedule, error) {
	return scheduleOf(Solve(context.Background(), Request{Platform: p, Strategy: StrategyLIFO, Arith: arith}))
}

// FIFOWithOrder computes optimal loads for the FIFO schedule using the
// given send order, under either communication model.
//
// Deprecated: use [Solver.Solve] (or [Solve]) with [StrategyFIFOOrder].
func FIFOWithOrder(p *Platform, order Order, model Model, arith Arith) (*Schedule, error) {
	return scheduleOf(Solve(context.Background(), Request{Platform: p, Strategy: StrategyFIFOOrder, Send: order, Model: model, Arith: arith}))
}

// LIFOWithOrder computes optimal loads for the LIFO schedule whose send
// order is the given order.
//
// Deprecated: use [Solver.Solve] (or [Solve]) with [StrategyLIFOOrder].
func LIFOWithOrder(p *Platform, order Order, model Model, arith Arith) (*Schedule, error) {
	return scheduleOf(Solve(context.Background(), Request{Platform: p, Strategy: StrategyLIFOOrder, Send: order, Model: model, Arith: arith}))
}

// SolveScenario computes optimal loads for an arbitrary scenario: enrolled
// workers and their send and return orders (Section 2.3).
//
// Deprecated: use [Solver.Solve] (or [Solve]) with [StrategyScenario].
func SolveScenario(p *Platform, send, ret Order, model Model, arith Arith) (*Schedule, error) {
	return scheduleOf(Solve(context.Background(), Request{Platform: p, Strategy: StrategyScenario, Send: send, Return: ret, Model: model, Arith: arith}))
}

// IncC is the INC_C heuristic of Section 5: FIFO over all workers by
// non-decreasing c (optimal for z ≤ 1 by Theorem 1).
//
// Deprecated: use [Solver.Solve] (or [Solve]) with [StrategyIncC].
func IncC(p *Platform, model Model, arith Arith) (*Schedule, error) {
	return scheduleOf(Solve(context.Background(), Request{Platform: p, Strategy: StrategyIncC, Model: model, Arith: arith}))
}

// IncW is the INC_W heuristic of Section 5: FIFO over all workers by
// non-decreasing w.
//
// Deprecated: use [Solver.Solve] (or [Solve]) with [StrategyIncW].
func IncW(p *Platform, model Model, arith Arith) (*Schedule, error) {
	return scheduleOf(Solve(context.Background(), Request{Platform: p, Strategy: StrategyIncW, Model: model, Arith: arith}))
}

// BestFIFOExhaustive searches all FIFO send orders (p ≤ 9) and returns the
// best schedule and its order.
//
// Deprecated: use [Solver.Solve] (or [Solve]) with [StrategyFIFOExhaustive];
// the engine adds cancellation and deadlines for this factorial search.
func BestFIFOExhaustive(p *Platform, model Model, arith Arith) (*Schedule, Order, error) {
	res, err := Solve(context.Background(), Request{Platform: p, Strategy: StrategyFIFOExhaustive, Model: model, Arith: arith})
	if err != nil {
		return nil, nil, err
	}
	return res.Schedule, res.Send, nil
}

// BestLIFOExhaustive searches all LIFO send orders (p ≤ 9).
//
// Deprecated: use [Solver.Solve] (or [Solve]) with [StrategyLIFOExhaustive];
// the engine adds cancellation and deadlines for this factorial search.
func BestLIFOExhaustive(p *Platform, model Model, arith Arith) (*Schedule, Order, error) {
	res, err := Solve(context.Background(), Request{Platform: p, Strategy: StrategyLIFOExhaustive, Model: model, Arith: arith})
	if err != nil {
		return nil, nil, err
	}
	return res.Schedule, res.Send, nil
}

// BestPairExhaustive searches all (σ1, σ2) permutation pairs (p ≤ 8 in
// float64, p ≤ 5 in exact arithmetic) — the general problem whose
// complexity the paper leaves open.
//
// Deprecated: use [Solver.Solve] (or [Solve]) with [StrategyPairExhaustive];
// the engine adds cancellation and deadlines for this (p!)² search.
func BestPairExhaustive(p *Platform, model Model, arith Arith) (*PairResult, error) {
	res, err := Solve(context.Background(), Request{Platform: p, Strategy: StrategyPairExhaustive, Model: model, Arith: arith})
	if err != nil {
		return nil, err
	}
	return &PairResult{Schedule: res.Schedule, Send: res.Send, Return: res.Return}, nil
}

// BusFIFOThroughput returns Theorem 2's closed-form optimal one-port FIFO
// throughput for a bus platform.
func BusFIFOThroughput(p *Platform) (float64, error) { return core.BusFIFOThroughput(p) }

// ExactBusFIFOThroughput evaluates the Theorem 2 closed form in exact
// rational arithmetic.
func ExactBusFIFOThroughput(p *Platform) (*big.Rat, error) { return core.ExactBusFIFOThroughput(p) }

// BusFIFOSchedule constructs the optimal one-port FIFO schedule on a bus
// via the constructive proof of Theorem 2.
//
// Deprecated: use [Solver.Solve] (or [Solve]) with [StrategyBusFIFO].
func BusFIFOSchedule(p *Platform) (*Schedule, error) {
	return scheduleOf(Solve(context.Background(), Request{Platform: p, Strategy: StrategyBusFIFO}))
}

// BusLIFOThroughput returns the closed-form LIFO throughput on a bus in
// the given worker order.
func BusLIFOThroughput(p *Platform) (float64, error) { return core.BusLIFOThroughput(p) }

// BusTwoPortFIFOThroughput returns ρ̃, the two-port optimal FIFO throughput
// on a bus (the companion-paper closed form inside Theorem 2).
func BusTwoPortFIFOThroughput(p *Platform) (float64, error) {
	return core.BusTwoPortFIFOThroughput(p)
}

// MakespanForLoad converts a throughput-form schedule into the time needed
// to process load units (linearity: load/ρ). Requests with Load set get the
// same number in Result.Makespan.
func MakespanForLoad(s *Schedule, load float64) float64 {
	return core.MakespanForLoad(s, load)
}

// DistributeInteger rounds fractional loads to integers summing to total,
// using the paper's policy: floor everything, then top up the first workers
// of the send order (Section 5).
func DistributeInteger(alphas []float64, order Order, total int) ([]int, error) {
	return rounding.Distribute(alphas, []int(order), total)
}

// Simulate executes a matrix-product schedule as a real master/worker
// message-passing program on the virtual cluster and returns the measured
// makespan and trace. See SimulationParams for the realism knobs (latency,
// jitter, cache factor).
func Simulate(params SimulationParams) (*SimulationResult, error) {
	return mmapp.Run(params)
}
