package dls

import (
	"context"
	"encoding/json"
	"testing"
	"time"
)

func degradePlatform() *Platform {
	return NewPlatform(
		Worker{C: 0.05, W: 0.30, D: 0.025},
		Worker{C: 0.08, W: 0.20, D: 0.040},
		Worker{C: 0.10, W: 0.50, D: 0.050},
		Worker{C: 0.07, W: 0.25, D: 0.035},
	)
}

// warm seeds the solver's cost EWMA so degradation decisions are
// deterministic regardless of machine speed.
func warm(s *Solver, strategy string, p int, est time.Duration) {
	s.costs.observe(strategy, p, est)
}

func TestDegradeAnswersWithHeuristic(t *testing.T) {
	s, err := NewSolver(WithDegradation())
	if err != nil {
		t.Fatal(err)
	}
	plat := degradePlatform()
	warm(s, StrategyFIFOExhaustive, plat.P(), time.Hour)

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	req := Request{Platform: plat, Strategy: StrategyFIFOExhaustive, Load: 100}
	res, err := s.Solve(ctx, req)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !res.Degraded {
		t.Fatal("result not marked Degraded despite a deadline-busting estimate")
	}
	if res.Strategy != StrategyFIFOExhaustive {
		t.Fatalf("Strategy = %q, want the requested %q", res.Strategy, StrategyFIFOExhaustive)
	}
	found := false
	for _, name := range degradeFallbacks[StrategyFIFOExhaustive] {
		if res.DegradedTo == name {
			found = true
		}
	}
	if !found {
		t.Fatalf("DegradedTo = %q, not a registered fallback", res.DegradedTo)
	}
	if res.Schedule == nil || res.Throughput <= 0 || res.Makespan <= 0 {
		t.Fatalf("degraded result incomplete: %+v", res)
	}

	// The degraded schedule must be byte-identical to solving the
	// fallback strategy directly.
	direct, err := s.Solve(context.Background(), Request{Platform: plat, Strategy: res.DegradedTo, Load: 100})
	if err != nil {
		t.Fatalf("direct %s solve: %v", res.DegradedTo, err)
	}
	type schedule struct {
		Alpha      []float64
		Send       Order
		Return     Order
		Throughput float64
		Makespan   float64
	}
	enc := func(r *Result) string {
		b, err := json.Marshal(schedule{r.Schedule.Alpha, r.Send, r.Return, r.Throughput, r.Makespan})
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if got, want := enc(res), enc(direct); got != want {
		t.Fatalf("degraded schedule diverges from direct %s solve:\n got %s\nwant %s", res.DegradedTo, got, want)
	}

	st := s.Stats()
	if st.Degraded != 1 {
		t.Fatalf("Stats.Degraded = %d, want 1", st.Degraded)
	}
	if st.DegradedByStrategy[res.DegradedTo] != 1 {
		t.Fatalf("Stats.DegradedByStrategy = %v, want %q -> 1", st.DegradedByStrategy, res.DegradedTo)
	}
}

func TestDegradePicksBestFallback(t *testing.T) {
	s, err := NewSolver(WithDegradation())
	if err != nil {
		t.Fatal(err)
	}
	plat := degradePlatform()
	warm(s, StrategyPairExhaustive, plat.P(), time.Hour)

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	res, err := s.Solve(ctx, Request{Platform: plat, Strategy: StrategyPairExhaustive})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !res.Degraded {
		t.Fatal("pair search did not degrade")
	}
	// Every other fallback must do no better than the winner.
	for _, name := range degradeFallbacks[StrategyPairExhaustive] {
		alt, err := s.Solve(context.Background(), Request{Platform: plat, Strategy: name})
		if err != nil {
			continue
		}
		if alt.Throughput > res.Throughput+1e-12 {
			t.Fatalf("fallback %s beats the degraded choice %s: %.12f > %.12f",
				name, res.DegradedTo, alt.Throughput, res.Throughput)
		}
	}
}

func TestDegradeRequiresDeadline(t *testing.T) {
	s, err := NewSolver(WithDegradation())
	if err != nil {
		t.Fatal(err)
	}
	plat := degradePlatform()
	warm(s, StrategyFIFOExhaustive, plat.P(), time.Hour)

	// No deadline: the search runs even with a monstrous estimate.
	res, err := s.Solve(context.Background(), Request{Platform: plat, Strategy: StrategyFIFOExhaustive})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Degraded {
		t.Fatal("degraded without a deadline")
	}
}

func TestDegradeColdEstimateRunsSearch(t *testing.T) {
	s, err := NewSolver(WithDegradation())
	if err != nil {
		t.Fatal(err)
	}
	plat := degradePlatform()
	if est := s.SolveCostEstimate(StrategyFIFOExhaustive, plat.P()); est != 0 {
		t.Fatalf("cold estimate = %v, want 0", est)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := s.Solve(ctx, Request{Platform: plat, Strategy: StrategyFIFOExhaustive})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Degraded {
		t.Fatal("degraded on a cold estimate")
	}
	// The completed search warmed the estimate.
	if est := s.SolveCostEstimate(StrategyFIFOExhaustive, plat.P()); est <= 0 {
		t.Fatal("estimate still cold after a completed search")
	}
}

func TestDegradeOffByDefault(t *testing.T) {
	s, err := NewSolver()
	if err != nil {
		t.Fatal(err)
	}
	plat := degradePlatform()
	warm(s, StrategyFIFOExhaustive, plat.P(), time.Hour)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := s.Solve(ctx, Request{Platform: plat, Strategy: StrategyFIFOExhaustive})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Degraded {
		t.Fatal("solver degraded without WithDegradation")
	}
}

func TestDegradedResultNotCached(t *testing.T) {
	s, err := NewSolver(WithDegradation(), WithCache(16))
	if err != nil {
		t.Fatal(err)
	}
	plat := degradePlatform()
	warm(s, StrategyFIFOExhaustive, plat.P(), time.Hour)

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	req := Request{Platform: plat, Strategy: StrategyFIFOExhaustive}
	res, err := s.Solve(ctx, req)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !res.Degraded {
		t.Fatal("first solve did not degrade")
	}

	// Cool the estimate down so an undeadlined re-solve runs the real
	// search: it must MISS the cache (the degraded answer was not put).
	s.costs.m.Delete(costKey{StrategyFIFOExhaustive, plat.P()})
	res2, err := s.Solve(context.Background(), req)
	if err != nil {
		t.Fatalf("second Solve: %v", err)
	}
	if res2.Cached {
		t.Fatal("second solve served from cache: degraded result was cached")
	}
	if res2.Degraded {
		t.Fatal("second solve degraded after the estimate was cleared")
	}
	// The true optimum must be at least as good as the heuristic.
	if res2.Throughput+1e-12 < res.Throughput {
		t.Fatalf("exhaustive optimum %.12f worse than heuristic %.12f", res2.Throughput, res.Throughput)
	}
}
