package dls

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// SLOClass is a latency service class a submission can be admitted
// under: a completion deadline relative to admission and a priority used
// when classes compete for capacity (higher is more important).
// Deadline 0 means "no deadline" (best effort).
type SLOClass struct {
	Name     string        `json:"name"`
	Deadline time.Duration `json:"deadline"`
	Priority int           `json:"priority"`
}

// DefaultSLOClasses is the serving default: an interactive "tight"
// class, the bulk "standard" class and a best-effort "batch" class.
// Chosen so the tight deadline comfortably holds a chain solve plus one
// admission window, but not a queue of windows.
func DefaultSLOClasses() []SLOClass {
	return []SLOClass{
		{Name: "tight", Deadline: 25 * time.Millisecond, Priority: 2},
		{Name: "standard", Deadline: 250 * time.Millisecond, Priority: 1},
		{Name: "batch", Deadline: 0, Priority: 0},
	}
}

// ParseSLOClasses parses a "name=deadline:priority,..." spec (the dlsd
// -slo-classes flag), e.g. "tight=25ms:2,standard=250ms:1,batch=0:0".
// Priority defaults to 0 when omitted; deadline 0 means best effort.
func ParseSLOClasses(spec string) ([]SLOClass, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("dls: empty SLO class spec")
	}
	var out []SLOClass
	seen := map[string]bool{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rest, ok := strings.Cut(part, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("dls: SLO class %q: want name=deadline[:priority]", part)
		}
		dspec, pspec, hasPrio := strings.Cut(rest, ":")
		var d time.Duration
		if dspec != "0" {
			var err error
			if d, err = time.ParseDuration(dspec); err != nil || d < 0 {
				return nil, fmt.Errorf("dls: SLO class %q: bad deadline %q", name, dspec)
			}
		}
		prio := 0
		if hasPrio {
			if _, err := fmt.Sscanf(pspec, "%d", &prio); err != nil {
				return nil, fmt.Errorf("dls: SLO class %q: bad priority %q", name, pspec)
			}
		}
		if seen[name] {
			return nil, fmt.Errorf("dls: SLO class %q repeated", name)
		}
		seen[name] = true
		out = append(out, SLOClass{Name: name, Deadline: d, Priority: prio})
	}
	return out, nil
}

// AdaptiveConfig turns on the SLO-aware adaptive admission window. The
// policy was designed and validated against the internal/sim
// discrete-event simulator (see cmd/dlssim and the sim-smoke CI gate);
// the zero value of every knob picks the simulation-tuned default.
//
// The policy has three levers, all driven by observed state rather than
// fixed constants:
//
//   - Window delay: idle service ⇒ no waiting (MinDelay), backlog ⇒ wait
//     longer so duplicates and chain-shaped company collapse into one
//     SolveBatch. delay = Gain × backlog × estimated-window-cost,
//     clamped to [MinDelay, MaxDelay] and to SlackFraction of the
//     window-opening request's deadline slack.
//   - Window size: under backlog the early-flush threshold rises to
//     MaxSize, maximizing dedup/prepass collapse exactly when throughput
//     is the constraint; when drained it falls back to the configured
//     base size so latency stays bounded by the timer.
//   - Deadline-aware shedding: a request whose estimated completion
//     (remaining window wait + queued windows ahead + its own solve)
//     already exceeds its SLO deadline is shed at admission — and again
//     at flush if the estimate soured while it queued — with
//     ErrOverloaded, freeing capacity for requests that can still make
//     their deadline instead of burning solves on certain violations.
//
// Cost estimates come from a per-group solve-cost histogram the batcher
// maintains (internal/stats.Histogram), so the policy calibrates itself
// to the traffic it actually sees.
type AdaptiveConfig struct {
	// MinDelay is the window delay under no backlog. Default 100µs.
	MinDelay time.Duration
	// MaxDelay bounds the delay under backlog. Default 5ms.
	MaxDelay time.Duration
	// MaxSize bounds the early-flush threshold under backlog (the
	// batcher's configured MaxSize is the no-backlog base). Default 512.
	MaxSize int
	// Gain scales backlog pressure into window delay. Default 1.0.
	Gain float64
	// SlackFraction caps the window delay at this fraction of the
	// opening request's remaining deadline slack. Default 0.25.
	SlackFraction float64
	// CostQuantile is the solve-cost histogram quantile used for
	// completion estimates. Default 0.5: the estimate already stacks a
	// full window cost on top of the backlog term, so the median keeps
	// the SLO shed decision near-unbiased — a high quantile here sheds
	// requests that would have met their deadline.
	CostQuantile float64
}

// withDefaults fills the zero fields.
func (cfg AdaptiveConfig) withDefaults() AdaptiveConfig {
	if cfg.MinDelay <= 0 {
		cfg.MinDelay = 100 * time.Microsecond
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 5 * time.Millisecond
	}
	if cfg.MaxSize <= 0 {
		cfg.MaxSize = 512
	}
	if cfg.Gain <= 0 {
		cfg.Gain = 1.0
	}
	if cfg.SlackFraction <= 0 {
		cfg.SlackFraction = 0.25
	}
	if cfg.CostQuantile <= 0 {
		cfg.CostQuantile = 0.5
	}
	return cfg
}

// adaptive is the controller state behind AdaptiveConfig. The window
// decisions (delay, size) are made on the collector goroutine (or the
// synchronous driver); the observations arrive from drain workers and
// Stats readers, so everything shared is atomic.
type adaptive struct {
	cfg   AdaptiveConfig
	clock Clock

	// groupCost observes per-dedup-group solve seconds.
	groupCost *stats.Histogram
	// groupsPerWindow is an EWMA of dedup groups per flushed window
	// (float64 bits).
	groupsPerWindow atomic.Uint64
	// inFlight counts windows flushed but not yet completed (the
	// backlog signal).
	inFlight atomic.Int64
	// delayNs and sizeNow expose the latest decisions for metrics.
	delayNs atomic.Int64
	sizeNow atomic.Int64
}

func newAdaptive(cfg AdaptiveConfig, clock Clock) *adaptive {
	return &adaptive{
		cfg:       cfg.withDefaults(),
		clock:     clock,
		groupCost: stats.NewHistogram(stats.LatencyBounds()...),
	}
}

// observeSolve records one window solve: d seconds of wall (or virtual)
// clock over groups deduplicated problems.
func (a *adaptive) observeSolve(d time.Duration, groups int) {
	if groups <= 0 {
		groups = 1
	}
	a.groupCost.Observe(d.Seconds() / float64(groups))
	const alpha = 0.2
	for {
		old := a.groupsPerWindow.Load()
		cur := math.Float64frombits(old)
		next := cur + alpha*(float64(groups)-cur)
		if cur == 0 {
			next = float64(groups)
		}
		if a.groupsPerWindow.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// estGroupCost is the per-group solve-cost estimate at the configured
// quantile; zero until the histogram has observations.
func (a *adaptive) estGroupCost() time.Duration {
	if a.groupCost.Count() == 0 {
		return 0
	}
	return time.Duration(a.groupCost.Quantile(a.cfg.CostQuantile) * float64(time.Second))
}

// estWindowCost estimates one window's solve time from the EWMA group
// count and the per-group cost quantile.
func (a *adaptive) estWindowCost() time.Duration {
	g := math.Float64frombits(a.groupsPerWindow.Load())
	if g < 1 {
		g = 1
	}
	return time.Duration(g * float64(a.estGroupCost()))
}

// windowDelay decides the admission delay for a window opened now by a
// request with the given absolute deadline (zero = none).
func (a *adaptive) windowDelay(now time.Time, deadline time.Time) time.Duration {
	backlog := a.inFlight.Load()
	d := time.Duration(a.cfg.Gain * float64(backlog) * float64(a.estWindowCost()))
	if d < a.cfg.MinDelay {
		d = a.cfg.MinDelay
	}
	if d > a.cfg.MaxDelay {
		d = a.cfg.MaxDelay
	}
	if !deadline.IsZero() {
		slack := time.Duration(a.cfg.SlackFraction * float64(deadline.Sub(now)))
		if slack < 0 {
			slack = 0
		}
		if d > slack {
			d = slack
		}
	}
	a.delayNs.Store(int64(d))
	return d
}

// windowSize decides the early-flush threshold given the batcher's base
// size: under backlog the window grows toward MaxSize so the flush
// collapses as many duplicates as possible; drained, it stays at base.
func (a *adaptive) windowSize(base int) int {
	size := base
	if a.inFlight.Load() > 0 {
		size = a.cfg.MaxSize
	}
	if size < base {
		size = base
	}
	a.sizeNow.Store(int64(size))
	return size
}

// estCompletion estimates when a request admitted now would complete:
// the remaining wait of the filling window (flushAt; zero means the
// window opens with this request), the backlog of flushed windows ahead
// spread over the drain workers, and one window's own solve.
func (a *adaptive) estCompletion(now, flushAt time.Time, workers int) time.Time {
	if workers < 1 {
		workers = 1
	}
	wc := a.estWindowCost()
	wait := time.Duration(0)
	if !flushAt.IsZero() && flushAt.After(now) {
		wait = flushAt.Sub(now)
	}
	// Windows ahead are on average half-served, so the backlog term
	// charges half a window cost each; charging the full cost
	// double-counts and sheds requests that would have made it.
	ahead := time.Duration(float64(a.inFlight.Load()) / float64(workers) * float64(wc) / 2)
	return now.Add(wait + ahead + wc)
}

// AdaptiveState is a point-in-time snapshot of the adaptive admission
// controller, for /metrics and reports.
type AdaptiveState struct {
	// WindowDelay and WindowSize are the most recent decisions.
	WindowDelay time.Duration
	WindowSize  int
	// BacklogWindows is the number of flushed-but-uncompleted windows.
	BacklogWindows int
	// GroupsPerWindow is the EWMA of dedup groups per window.
	GroupsPerWindow float64
	// GroupCostP50 and GroupCostP90 are per-group solve-cost estimates.
	GroupCostP50, GroupCostP90 time.Duration
}

// state snapshots the controller.
func (a *adaptive) state() AdaptiveState {
	return AdaptiveState{
		WindowDelay:     time.Duration(a.delayNs.Load()),
		WindowSize:      int(a.sizeNow.Load()),
		BacklogWindows:  int(a.inFlight.Load()),
		GroupsPerWindow: math.Float64frombits(a.groupsPerWindow.Load()),
		GroupCostP50:    time.Duration(a.groupCost.Quantile(0.5) * float64(time.Second)),
		GroupCostP90:    time.Duration(a.groupCost.Quantile(0.9) * float64(time.Second)),
	}
}

// sortClassNames returns the class-counter keys in stable order (shared
// by Stats consumers and metrics emission).
func sortClassNames(m map[string]uint64) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
