package dls

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
)

// Names of the built-in strategies. Every scheduling entrypoint of the
// historical free-function API is reachable through one of them.
const (
	// StrategyFIFO is the optimal FIFO schedule: Theorem 1 + Proposition 1
	// under the one-port model (requires a common z = d/c), the companion
	// paper's optimal two-port FIFO under TwoPort.
	StrategyFIFO = "fifo"
	// StrategyLIFO is the optimal LIFO schedule (one-port; under TwoPort it
	// coincides, every LIFO schedule being one-port feasible).
	StrategyLIFO = "lifo"
	// StrategyIncC is the INC_C heuristic: FIFO over all workers by
	// non-decreasing c (optimal for z ≤ 1 by Theorem 1).
	StrategyIncC = "inc-c"
	// StrategyIncW is the INC_W heuristic: FIFO by non-decreasing w.
	StrategyIncW = "inc-w"
	// StrategyDecC is FIFO by non-increasing c: the optimal FIFO send order
	// when z > 1 (Section 3's mirror argument).
	StrategyDecC = "dec-c"
	// StrategyFIFOOrder solves the FIFO schedule using Request.Send as the
	// send (and return) order.
	StrategyFIFOOrder = "fifo-order"
	// StrategyLIFOOrder solves the LIFO schedule whose send order is
	// Request.Send (results return in reverse).
	StrategyLIFOOrder = "lifo-order"
	// StrategyScenario solves an arbitrary (σ1, σ2) scenario given by
	// Request.Send and Request.Return (Section 2.3).
	StrategyScenario = "scenario"
	// StrategyBusFIFO constructs the optimal one-port FIFO schedule on a bus
	// platform via the constructive proof of Theorem 2.
	StrategyBusFIFO = "bus-fifo"
	// StrategyFIFOExhaustive searches all FIFO send orders (p ≤ 9).
	StrategyFIFOExhaustive = "fifo-exhaustive"
	// StrategyLIFOExhaustive searches all LIFO send orders (p ≤ 9).
	StrategyLIFOExhaustive = "lifo-exhaustive"
	// StrategyPairExhaustive searches all (σ1, σ2) permutation pairs
	// (p ≤ 8; p ≤ 5 under exact arithmetic, whose flat loop runs
	// unpruned) — the general problem whose complexity the paper leaves
	// open. It explores with the default algorithm: the return-order
	// branch-and-bound for float64 backends, the flat double loop under
	// exact arithmetic.
	StrategyPairExhaustive = "pair-exhaustive"
	// StrategyPairBB forces the branch-and-bound pair search: return
	// orders are explored as prefix trees and whole subtrees are cut by
	// the eval-layer prefix bound. Float64 backends only.
	StrategyPairBB = "pair-bb"
	// StrategyPairFlat forces the flat p!×p! pair search (send-prefix
	// reuse, whole-inner-loop pruning) — the agreement-testing baseline
	// and the exact-arithmetic path.
	StrategyPairFlat = "pair-flat"
	// StrategyFIFOAffine searches participant subsets (p ≤ 20) for the best
	// one-port FIFO schedule under the affine cost model of Request.Affine,
	// branch-and-bound over the subset lattice on float64 backends.
	StrategyFIFOAffine = "fifo-affine"
	// StrategyScenarioAffine solves a fixed (σ1, σ2) scenario under the
	// affine cost model of Request.Affine.
	StrategyScenarioAffine = "scenario-affine"
)

// PairStrategyForSearch maps the CLI pair-search spellings onto the
// engine's pair-search strategies: "auto" → StrategyPairExhaustive,
// "bb" → StrategyPairBB, "flat" → StrategyPairFlat. Both CLIs (`dlsfifo
// brute -search`, `dlsexp -pair-search`) resolve their flags here, so the
// spellings cannot diverge.
func PairStrategyForSearch(name string) (string, error) {
	switch name {
	case "auto":
		return StrategyPairExhaustive, nil
	case "bb":
		return StrategyPairBB, nil
	case "flat":
		return StrategyPairFlat, nil
	}
	return "", fmt.Errorf("dls: unknown pair-search algorithm %q (auto | bb | flat)", name)
}

// StrategyFunc computes a Result for a prepared Request. The engine has
// already validated the platform, resolved the arithmetic default and
// applied the solver timeout to ctx; implementations of long-running
// strategies should poll ctx and abort with ctx.Err() when it is done.
// Implementations fill the Schedule / Send / Return / Affine fields; the
// engine stamps Strategy, Model, Arith, Throughput, Makespan and Cached.
type StrategyFunc func(ctx context.Context, req Request) (*Result, error)

var (
	strategyMu  sync.RWMutex
	strategyReg = make(map[string]StrategyFunc)
)

// RegisterStrategy adds a named strategy to the registry, making it
// addressable from Request.Strategy on every Solver. The name must be
// non-empty and not yet taken. Registration is safe for concurrent use.
func RegisterStrategy(name string, fn StrategyFunc) error {
	if name == "" {
		return fmt.Errorf("dls: RegisterStrategy: empty strategy name")
	}
	if fn == nil {
		return fmt.Errorf("dls: RegisterStrategy(%q): nil StrategyFunc", name)
	}
	strategyMu.Lock()
	defer strategyMu.Unlock()
	if _, dup := strategyReg[name]; dup {
		return fmt.Errorf("dls: RegisterStrategy(%q): already registered", name)
	}
	strategyReg[name] = fn
	return nil
}

// mustRegisterStrategy registers a built-in strategy and panics on
// collision (a program bug, not a runtime condition).
func mustRegisterStrategy(name string, fn StrategyFunc) {
	if err := RegisterStrategy(name, fn); err != nil {
		panic(err)
	}
}

// Strategies returns the names of all registered strategies, sorted.
func Strategies() []string {
	strategyMu.RLock()
	defer strategyMu.RUnlock()
	names := make([]string, 0, len(strategyReg))
	for n := range strategyReg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// lookupStrategy resolves a registered strategy by name.
func lookupStrategy(name string) (StrategyFunc, bool) {
	strategyMu.RLock()
	defer strategyMu.RUnlock()
	fn, ok := strategyReg[name]
	return fn, ok
}

// scheduleResult wraps a computed schedule, carrying its (pruned) orders.
func scheduleResult(s *Schedule) *Result {
	return &Result{Schedule: s, Send: s.SendOrder, Return: s.ReturnOrder}
}

func init() {
	mustRegisterStrategy(StrategyFIFO, func(_ context.Context, req Request) (*Result, error) {
		var (
			s   *Schedule
			err error
		)
		if req.Model == TwoPort {
			s, err = core.OptimalFIFOTwoPortEval(req.Platform, req.Eval)
		} else {
			s, err = core.OptimalFIFOEval(req.Platform, req.Eval)
		}
		if err != nil {
			return nil, err
		}
		return scheduleResult(s), nil
	})
	mustRegisterStrategy(StrategyLIFO, func(_ context.Context, req Request) (*Result, error) {
		var (
			s   *Schedule
			err error
		)
		if req.Model == TwoPort {
			s, err = core.OptimalLIFOTwoPortEval(req.Platform, req.Eval)
		} else {
			s, err = core.OptimalLIFOEval(req.Platform, req.Eval)
		}
		if err != nil {
			return nil, err
		}
		return scheduleResult(s), nil
	})
	// The fixed-order strategies all funnel into the eval pipeline through
	// one scenario solve; orderOf derives (σ1, σ2) from the request.
	scenario := func(orderOf func(Request) (Order, Order, error)) StrategyFunc {
		return func(ctx context.Context, req Request) (*Result, error) {
			send, ret, err := orderOf(req)
			if err != nil {
				return nil, err
			}
			s, err := core.SolveScenarioEvalContext(ctx, req.Platform, send, ret, req.Model, req.Eval)
			if err != nil {
				return nil, err
			}
			return scheduleResult(s), nil
		}
	}
	fifoBy := func(order func(*Platform) Order) func(Request) (Order, Order, error) {
		return func(req Request) (Order, Order, error) {
			o := order(req.Platform)
			return o, o, nil
		}
	}
	mustRegisterStrategy(StrategyIncC, scenario(fifoBy((*Platform).ByC)))
	mustRegisterStrategy(StrategyIncW, scenario(fifoBy((*Platform).ByW)))
	mustRegisterStrategy(StrategyDecC, scenario(fifoBy((*Platform).ByCDesc)))
	mustRegisterStrategy(StrategyFIFOOrder, scenario(func(req Request) (Order, Order, error) {
		return req.Send, req.Send, nil
	}))
	mustRegisterStrategy(StrategyLIFOOrder, scenario(func(req Request) (Order, Order, error) {
		return req.Send, req.Send.Reverse(), nil
	}))
	mustRegisterStrategy(StrategyScenario, scenario(func(req Request) (Order, Order, error) {
		return req.Send, req.Return, nil
	}))
	mustRegisterStrategy(StrategyBusFIFO, func(_ context.Context, req Request) (*Result, error) {
		if req.Model != OnePort {
			return nil, fmt.Errorf("dls: strategy %q: Theorem 2's constructive schedule is one-port only", StrategyBusFIFO)
		}
		s, err := core.BusFIFOSchedule(req.Platform)
		if err != nil {
			return nil, err
		}
		return scheduleResult(s), nil
	})
	mustRegisterStrategy(StrategyFIFOExhaustive, func(ctx context.Context, req Request) (*Result, error) {
		s, order, err := core.BestFIFOExhaustiveEval(ctx, req.Platform, req.Model, req.Eval)
		if err != nil {
			return nil, err
		}
		return &Result{Schedule: s, Send: order, Return: order}, nil
	})
	mustRegisterStrategy(StrategyLIFOExhaustive, func(ctx context.Context, req Request) (*Result, error) {
		s, order, err := core.BestLIFOExhaustiveEval(ctx, req.Platform, req.Model, req.Eval)
		if err != nil {
			return nil, err
		}
		return &Result{Schedule: s, Send: order, Return: order.Reverse()}, nil
	})
	pairSearch := func(algo core.PairAlgo) StrategyFunc {
		return func(ctx context.Context, req Request) (*Result, error) {
			pr, err := core.BestPairExhaustiveAlgo(ctx, req.Platform, req.Model, req.Eval, algo)
			if err != nil {
				return nil, err
			}
			return &Result{Schedule: pr.Schedule, Send: pr.Send, Return: pr.Return}, nil
		}
	}
	mustRegisterStrategy(StrategyPairExhaustive, pairSearch(core.PairAuto))
	mustRegisterStrategy(StrategyPairBB, pairSearch(core.PairBB))
	mustRegisterStrategy(StrategyPairFlat, pairSearch(core.PairFlat))
	mustRegisterStrategy(StrategyFIFOAffine, func(ctx context.Context, req Request) (*Result, error) {
		if req.Affine == nil {
			return nil, fmt.Errorf("dls: strategy %q requires Request.Affine", StrategyFIFOAffine)
		}
		if req.Model != OnePort {
			return nil, fmt.Errorf("dls: strategy %q: subset search is one-port only", StrategyFIFOAffine)
		}
		ar, err := core.BestFIFOAffineContext(ctx, req.Platform, *req.Affine, req.Arith)
		if err != nil {
			return nil, err
		}
		return &Result{Affine: ar, Send: ar.Send, Return: ar.Return}, nil
	})
	mustRegisterStrategy(StrategyScenarioAffine, func(_ context.Context, req Request) (*Result, error) {
		if req.Affine == nil {
			return nil, fmt.Errorf("dls: strategy %q requires Request.Affine", StrategyScenarioAffine)
		}
		ar, err := core.SolveScenarioAffine(req.Platform, *req.Affine, req.Send, req.Return, req.Model, req.Arith)
		if err != nil {
			return nil, err
		}
		return &Result{Affine: ar, Send: ar.Send, Return: ar.Return}, nil
	})
}
