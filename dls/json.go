package dls

import (
	"encoding/json"
	"fmt"
)

// This file makes Request round-trippable through JSON, the wire format of
// the dlsd serving layer: enums travel as their canonical names ("one-port",
// "exact", "closed-form", ...), zero-valued knobs are omitted so a request
// written by hand stays as small as the Go literal, and unmarshalling
// rejects unknown names instead of smuggling them through as integers.

// ModelName returns the wire name of a communication model ("one-port",
// "two-port").
func ModelName(m Model) string { return m.String() }

// ParseModel parses a communication-model name.
func ParseModel(s string) (Model, error) {
	switch s {
	case "", ModelName(OnePort):
		return OnePort, nil
	case ModelName(TwoPort):
		return TwoPort, nil
	}
	return 0, fmt.Errorf("dls: unknown model %q (%s | %s)", s, ModelName(OnePort), ModelName(TwoPort))
}

// ArithName returns the wire name of an arithmetic mode ("float64",
// "exact").
func ArithName(a Arith) string { return a.String() }

// ParseArith parses an arithmetic-mode name.
func ParseArith(s string) (Arith, error) {
	switch s {
	case "", ArithName(Float64):
		return Float64, nil
	case ArithName(Exact):
		return Exact, nil
	}
	return 0, fmt.Errorf("dls: unknown arithmetic %q (%s | %s)", s, ArithName(Float64), ArithName(Exact))
}

// affineWire is the JSON shape of an Affine extension.
type affineWire struct {
	In   []float64 `json:"in"`
	Out  []float64 `json:"out"`
	Comp []float64 `json:"comp"`
}

// requestWire is the JSON shape of a Request. Enum fields are strings;
// empty strings mean the zero value, so marshalling omits defaults and
// both spellings unmarshal identically.
type requestWire struct {
	Platform *Platform   `json:"platform,omitempty"`
	Strategy string      `json:"strategy"`
	Model    string      `json:"model,omitempty"`
	Arith    string      `json:"arith,omitempty"`
	Eval     string      `json:"eval,omitempty"`
	Send     []int       `json:"send,omitempty"`
	Return   []int       `json:"return,omitempty"`
	Affine   *affineWire `json:"affine,omitempty"`
	Load     float64     `json:"load,omitempty"`
}

// MarshalJSON encodes the request in the wire format. Zero-valued knobs
// (one-port model, float64 arithmetic, auto eval, no load) are omitted.
func (req Request) MarshalJSON() ([]byte, error) {
	w := requestWire{
		Platform: req.Platform,
		Strategy: req.Strategy,
		Send:     req.Send,
		Return:   req.Return,
		Load:     req.Load,
	}
	if req.Model != OnePort {
		w.Model = ModelName(req.Model)
	}
	if req.Arith != Float64 {
		w.Arith = ArithName(req.Arith)
	}
	if req.Eval != EvalAuto {
		w.Eval = req.Eval.String()
	}
	if req.Affine != nil {
		w.Affine = &affineWire{In: req.Affine.In, Out: req.Affine.Out, Comp: req.Affine.Comp}
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes the wire format, rejecting unknown enum names.
// The platform payload is validated by its own unmarshaller; full request
// validation (strategy lookup, order shapes) stays with Solver.prepare.
func (req *Request) UnmarshalJSON(data []byte) error {
	var w requestWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	model, err := ParseModel(w.Model)
	if err != nil {
		return err
	}
	arith, err := ParseArith(w.Arith)
	if err != nil {
		return err
	}
	evalMode := EvalAuto
	if w.Eval != "" {
		if evalMode, err = ParseEvalMode(w.Eval); err != nil {
			return err
		}
	}
	*req = Request{
		Platform: w.Platform,
		Strategy: w.Strategy,
		Model:    model,
		Arith:    arith,
		Eval:     evalMode,
		Send:     w.Send,
		Return:   w.Return,
		Load:     w.Load,
	}
	if w.Affine != nil {
		req.Affine = &Affine{In: w.Affine.In, Out: w.Affine.Out, Comp: w.Affine.Comp}
	}
	return nil
}
