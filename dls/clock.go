package dls

import (
	"context"
	"sync"
	"time"
)

// Clock abstracts the time source the admission-window machinery runs
// against: Batcher uses it for the window-expiry timer, deadline
// propagation into window contexts, and SLO accounting. Production code
// runs on SystemClock(); internal/sim injects a virtual clock so the
// same admission code can be driven deterministically at simulated
// 10⁶-user scale, and tests can probe timer/deadline races without
// sleeping.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// NewTimer returns a timer that fires once after d.
	NewTimer(d time.Duration) Timer
	// AfterFunc runs fn after d (on an unspecified goroutine for the
	// system clock; synchronously from Advance for virtual clocks).
	// The returned Timer's Stop cancels a pending fn.
	AfterFunc(d time.Duration, fn func()) Timer
	// ContextWithDeadline derives a context that is done at the given
	// clock time with context.DeadlineExceeded, mirroring
	// context.WithDeadline but measured on this clock.
	ContextWithDeadline(parent context.Context, deadline time.Time) (context.Context, context.CancelFunc)
}

// Timer is the Clock counterpart of *time.Timer (channel-based wait plus
// Stop), narrowed to what the batcher needs.
type Timer interface {
	// C returns the firing channel. For timers created by AfterFunc the
	// channel is nil.
	C() <-chan time.Time
	// Stop prevents the timer from firing, reporting whether it was
	// still pending.
	Stop() bool
}

// SystemClock returns the Clock backed by the time package — the
// production time source and the default wherever a Clock is optional.
func SystemClock() Clock { return systemClock{} }

type systemClock struct{}

func (systemClock) Now() time.Time { return time.Now() }

func (systemClock) NewTimer(d time.Duration) Timer { return systemTimer{time.NewTimer(d)} }

func (systemClock) AfterFunc(d time.Duration, fn func()) Timer {
	return systemTimer{time.AfterFunc(d, fn)}
}

func (systemClock) ContextWithDeadline(parent context.Context, deadline time.Time) (context.Context, context.CancelFunc) {
	return context.WithDeadline(parent, deadline)
}

type systemTimer struct{ t *time.Timer }

func (t systemTimer) C() <-chan time.Time { return t.t.C }
func (t systemTimer) Stop() bool          { return t.t.Stop() }

// deadlineContext implements ContextWithDeadline for virtual clocks: a
// child context whose Done fires either with the parent or when the
// clock reaches the deadline, reporting context.DeadlineExceeded like
// the real thing. Exported through NewDeadlineContext so clock
// implementations outside this package (internal/sim) don't have to
// re-derive the Err/Deadline semantics.
type deadlineContext struct {
	context.Context
	deadline time.Time

	mu   sync.Mutex
	done chan struct{}
	err  error
}

// NewDeadlineContext builds a deadline-carrying child context for a
// custom Clock: the returned expire function marks the context done with
// context.DeadlineExceeded (the clock calls it when its time reaches the
// deadline), and cancel releases it early with context.Canceled. Both are
// idempotent; whichever of {expire, cancel, parent.Done} happens first
// wins.
func NewDeadlineContext(parent context.Context, deadline time.Time) (ctx context.Context, expire func(), cancel context.CancelFunc) {
	d := &deadlineContext{
		Context:  parent,
		deadline: deadline,
		done:     make(chan struct{}),
	}
	if parent.Done() != nil {
		stop := context.AfterFunc(parent, func() { d.finish(context.Cause(parent)) })
		_ = stop // the registration dies with the parent; finish is idempotent
	}
	return d, func() { d.finish(context.DeadlineExceeded) }, func() { d.finish(context.Canceled) }
}

// finish closes the context with err if it is not already done.
func (d *deadlineContext) finish(err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.err != nil {
		return
	}
	if err == nil {
		err = context.Canceled
	}
	d.err = err
	close(d.done)
}

func (d *deadlineContext) Deadline() (time.Time, bool) {
	if pd, ok := d.Context.Deadline(); ok && pd.Before(d.deadline) {
		return pd, true
	}
	return d.deadline, true
}

func (d *deadlineContext) Done() <-chan struct{} { return d.done }

func (d *deadlineContext) Err() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.err
}
