package dls_test

// Edge-case tests for the admission-window machinery under an injected
// virtual clock (internal/sim.Clock): timer/deadline races that real
// clocks can only probe with sleeps are driven here deterministically —
// window expiry landing exactly on a request's SLO deadline, the
// zero-delay direct mode with a full queue, and Close racing an
// in-flight flush.

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/dls"
	"repro/internal/sim"
)

func TestParseSLOClasses(t *testing.T) {
	classes, err := dls.ParseSLOClasses("tight=25ms:2,standard=250ms:1,batch=0:0")
	if err != nil {
		t.Fatal(err)
	}
	want := []dls.SLOClass{
		{Name: "tight", Deadline: 25 * time.Millisecond, Priority: 2},
		{Name: "standard", Deadline: 250 * time.Millisecond, Priority: 1},
		{Name: "batch"},
	}
	if len(classes) != len(want) {
		t.Fatalf("got %d classes, want %d", len(classes), len(want))
	}
	for i, c := range classes {
		if c != want[i] {
			t.Errorf("class %d = %+v, want %+v", i, c, want[i])
		}
	}

	// Priority is optional.
	classes, err = dls.ParseSLOClasses("a=5ms")
	if err != nil || len(classes) != 1 || classes[0].Priority != 0 || classes[0].Deadline != 5*time.Millisecond {
		t.Errorf("priority-less spec: %+v, %v", classes, err)
	}

	for _, bad := range []string{
		"",              // empty
		"noequals",      // missing =
		"x=bogus",       // unparsable deadline
		"x=-5ms",        // negative deadline
		"x=1ms:zz",      // unparsable priority
		"a=1ms,a=2ms:1", // duplicate name
	} {
		if _, err := dls.ParseSLOClasses(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestBatcherClassResolution(t *testing.T) {
	solver := mustSolver(t)
	b := solver.NewBatcher(dls.BatcherConfig{MaxDelay: time.Millisecond, Classes: dls.DefaultSLOClasses()})
	defer b.Close()

	if c, err := b.Class(""); err != nil || c != (dls.SLOClass{}) {
		t.Errorf(`Class("") = %+v, %v; want zero class`, c, err)
	}
	c, err := b.Class("tight")
	if err != nil || c.Deadline != 25*time.Millisecond {
		t.Errorf(`Class("tight") = %+v, %v`, c, err)
	}
	if _, err := b.Class("nope"); !errors.Is(err, dls.ErrUnknownClass) {
		t.Errorf(`Class("nope") error = %v, want ErrUnknownClass`, err)
	}
	if _, err := b.SubmitSLO(context.Background(), dls.Request{}, "nope"); !errors.Is(err, dls.ErrUnknownClass) {
		t.Errorf("SubmitSLO under unknown class = %v, want ErrUnknownClass", err)
	}
}

// TestBatcherWindowExpiryAtRequestDeadline pins the nastiest timer race:
// the window timer and the request's SLO-deadline context expire at the
// same virtual instant. The submission must come back with
// DeadlineExceeded (the deadline context was armed first) and the
// batcher must stay fully serviceable afterwards.
func TestBatcherWindowExpiryAtRequestDeadline(t *testing.T) {
	clk := sim.NewClock()
	solver := mustSolver(t)
	b := solver.NewBatcher(dls.BatcherConfig{
		MaxDelay: 2 * time.Millisecond,
		MaxSize:  8,
		Clock:    clk,
		Classes:  []dls.SLOClass{{Name: "exact", Deadline: 2 * time.Millisecond, Priority: 1}},
	})
	defer b.Close()

	req := dls.Request{Platform: testPlatform(), Strategy: dls.StrategyFIFO, Load: 100}
	errc := make(chan error, 1)
	go func() {
		_, err := b.SubmitSLO(context.Background(), req, "exact")
		errc <- err
	}()
	// Two timers must be pending: the deadline context (armed by Submit)
	// and the window timer (armed by the collector) — both due at +2ms.
	if !clk.WaitTimers(2, 5*time.Second) {
		t.Fatal("deadline and window timers were not both armed")
	}
	clk.Advance(2 * time.Millisecond)
	select {
	case err := <-errc:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("submission at deadline = %v, want DeadlineExceeded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("submission did not return after the shared expiry instant")
	}

	// The batcher still serves: a plain submission flushed by the next
	// window timer solves normally.
	resc := make(chan *dls.Result, 1)
	go func() {
		res, err := b.Submit(context.Background(), req)
		if err != nil {
			t.Errorf("follow-up Submit: %v", err)
		}
		resc <- res
	}()
	if !clk.WaitTimers(1, 5*time.Second) {
		t.Fatal("follow-up window timer was not armed")
	}
	clk.Advance(2 * time.Millisecond)
	select {
	case res := <-resc:
		if res == nil {
			t.Fatal("follow-up Submit returned no result")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follow-up Submit did not return")
	}
}

// TestBatcherDirectModeShedsAtCap covers the zero-delay window with a
// full queue: MaxDelay = 0 turns the batcher into a bounded direct
// solver, and a Submit beyond QueueCap concurrent solves must shed
// immediately with ErrOverloaded, then recover once the slot frees.
func TestBatcherDirectModeShedsAtCap(t *testing.T) {
	registerBlockingStrategy()
	solver := mustSolver(t, dls.WithParallelism(1))
	b := solver.NewBatcher(dls.BatcherConfig{MaxDelay: 0, QueueCap: 1, Clock: sim.NewClock()})
	defer b.Close()

	ctx, cancel := context.WithCancel(context.Background())
	blocked := make(chan error, 1)
	go func() {
		_, err := b.Submit(ctx, dls.Request{Platform: testPlatform(), Strategy: "test-block"})
		blocked <- err
	}()
	waitFor(t, "first submission to occupy the direct slot", func() bool {
		return b.Stats().QueueDepth == 1
	})

	if _, err := b.Submit(context.Background(), dls.Request{Platform: testPlatform(), Strategy: "test-block"}); !errors.Is(err, dls.ErrOverloaded) {
		t.Fatalf("over-cap direct Submit = %v, want ErrOverloaded", err)
	}
	st := solver.Stats()
	if st.Shed == 0 || st.ShedByClass[""] == 0 {
		t.Errorf("shed not counted: Shed=%d ShedByClass=%v", st.Shed, st.ShedByClass)
	}

	cancel()
	if err := <-blocked; err == nil {
		t.Fatal("cancelled direct submission reported success")
	}
	waitFor(t, "the direct slot to free", func() bool {
		return b.Stats().QueueDepth == 0
	})
	res, err := b.Submit(context.Background(), dls.Request{Platform: testPlatform(), Strategy: dls.StrategyFIFO, Load: 100})
	if err != nil || res == nil {
		t.Fatalf("post-recovery Submit = %v, %v", res, err)
	}
}

// TestBatcherCloseDrainsInFlightFlush races Close against a window that
// has flushed but whose solve is still running: Close must block until
// the window is answered (drain semantics), then return.
func TestBatcherCloseDrainsInFlightFlush(t *testing.T) {
	registerBlockingStrategy()
	clk := sim.NewClock()
	solver := mustSolver(t, dls.WithParallelism(1))
	b := solver.NewBatcher(dls.BatcherConfig{MaxDelay: time.Millisecond, MaxSize: 4, Workers: 1, Clock: clk})

	ctx, cancel := context.WithCancel(context.Background())
	subErr := make(chan error, 1)
	go func() {
		_, err := b.Submit(ctx, dls.Request{Platform: testPlatform(), Strategy: "test-block"})
		subErr <- err
	}()
	if !clk.WaitTimers(1, 5*time.Second) {
		t.Fatal("window timer was not armed")
	}
	clk.Advance(time.Millisecond)
	waitFor(t, "the window to flush", func() bool {
		return solver.Stats().Windows >= 1
	})

	closed := make(chan struct{})
	go func() {
		b.Close()
		close(closed)
	}()
	select {
	case <-closed:
		t.Fatal("Close returned while a flushed window was still solving")
	case <-time.After(50 * time.Millisecond):
	}

	cancel() // release the wedged solve; Close must now drain and return
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return after the in-flight window completed")
	}
	if err := <-subErr; err == nil {
		t.Fatal("wedged submission reported success")
	}
	if _, err := b.Submit(context.Background(), dls.Request{}); !errors.Is(err, dls.ErrBatcherClosed) {
		t.Errorf("Submit after Close = %v, want ErrBatcherClosed", err)
	}
}

// TestSyncBatcherAccounting drives the synchronous (simulation) surface
// directly: Offer/ExpireWindow/Complete under a virtual clock, checking
// queue-cap shedding (with the OnShed hook seeing the owner tag), dedup
// group counting, and per-class violation accounting against the clock.
func TestSyncBatcherAccounting(t *testing.T) {
	clk := sim.NewClock()
	solver := mustSolver(t)
	var windows []*dls.Window
	type shedRec struct {
		class string
		tag   any
		err   error
	}
	var sheds []shedRec
	b := solver.NewBatcher(dls.BatcherConfig{
		MaxDelay: time.Millisecond,
		MaxSize:  4,
		QueueCap: 2,
		Clock:    clk,
		Classes:  []dls.SLOClass{{Name: "tight", Deadline: time.Millisecond, Priority: 1}},
		OnWindow: func(w *dls.Window) { windows = append(windows, w) },
		OnShed:   func(class string, tag any, err error) { sheds = append(sheds, shedRec{class, tag, err}) },
	})

	if _, err := b.Submit(context.Background(), dls.Request{}); err == nil {
		t.Fatal("Submit on a synchronous batcher was accepted")
	}

	req := dls.Request{Platform: testPlatform(), Strategy: dls.StrategyIncC, Load: 100}
	p1, err := b.Offer(context.Background(), req, "tight", "a")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := p1.Deadline(), sim.Epoch.Add(time.Millisecond); !got.Equal(want) {
		t.Errorf("tight deadline = %v, want %v", got, want)
	}
	if dl, ok := b.WindowDeadline(); !ok || !dl.Equal(sim.Epoch.Add(time.Millisecond)) {
		t.Errorf("WindowDeadline = %v, %t", dl, ok)
	}
	if _, err := b.Offer(context.Background(), req, "", "b"); err != nil {
		t.Fatal(err)
	}
	// Third offer exceeds QueueCap: shed immediately, tag visible to OnShed.
	p3, err := b.Offer(context.Background(), req, "", "c")
	if err != nil {
		t.Fatal(err)
	}
	if !p3.Done() || !errors.Is(p3.Err(), dls.ErrOverloaded) {
		t.Fatalf("over-cap Offer: done=%t err=%v", p3.Done(), p3.Err())
	}
	if len(sheds) != 1 || sheds[0].tag != "c" || sheds[0].class != "" {
		t.Fatalf("OnShed saw %+v", sheds)
	}

	// Expire past the tight deadline: the window still flushes and
	// completes, and the late completion is counted as a violation.
	clk.Advance(2 * time.Millisecond)
	b.ExpireWindow()
	if len(windows) != 1 {
		t.Fatalf("flushed %d windows, want 1", len(windows))
	}
	w := windows[0]
	if w.Size() != 2 || w.Groups() != 1 {
		t.Errorf("window size=%d groups=%d, want 2 identical requests in 1 group", w.Size(), w.Groups())
	}
	if w.Tag(0) != "a" || w.Class(0).Name != "tight" {
		t.Errorf("window sub 0: tag=%v class=%q", w.Tag(0), w.Class(0).Name)
	}
	if err := w.Complete(nil, nil); err != nil {
		t.Fatal(err)
	}
	if !p1.Done() || p1.Err() != nil {
		t.Errorf("completed pending: done=%t err=%v", p1.Done(), p1.Err())
	}
	st := solver.Stats()
	if st.ViolationsByClass["tight"] != 1 {
		t.Errorf("ViolationsByClass = %v, want tight:1", st.ViolationsByClass)
	}
	if st.Windows != 1 || st.BatchedWindows != 1 || st.BatchedRequests != 2 {
		t.Errorf("window counters: %d/%d/%d", st.Windows, st.BatchedWindows, st.BatchedRequests)
	}

	// A window completed inside its deadline adds no violation.
	if _, err := b.Offer(context.Background(), req, "tight", nil); err != nil {
		t.Fatal(err)
	}
	b.ExpireWindow()
	if len(windows) != 2 {
		t.Fatalf("flushed %d windows, want 2", len(windows))
	}
	if err := windows[1].Complete(nil, nil); err != nil {
		t.Fatal(err)
	}
	if got := solver.Stats().ViolationsByClass["tight"]; got != 1 {
		t.Errorf("on-time completion counted as violation: %d", got)
	}

	// Complete validates slice lengths before touching any submission.
	if _, err := b.Offer(context.Background(), req, "", nil); err != nil {
		t.Fatal(err)
	}
	b.ExpireWindow()
	last := windows[len(windows)-1]
	if err := last.Complete(make([]*dls.Result, last.Size()+1), nil); err == nil {
		t.Error("Complete accepted a mis-sized results slice")
	}
	if err := last.Complete(nil, make([]error, last.Size()+1)); err == nil {
		t.Error("Complete accepted a mis-sized errors slice")
	}
	if err := last.Complete(nil, nil); err != nil {
		t.Fatal(err)
	}

	b.Close()
	if _, err := b.Offer(context.Background(), req, "", nil); !errors.Is(err, dls.ErrBatcherClosed) {
		t.Errorf("Offer after Close = %v, want ErrBatcherClosed", err)
	}
}

// waitFor polls cond with a real-time budget — for the few assertions
// that synchronize with the batcher's own goroutines.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}
