package dls

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/stats"
)

// Request names one scheduling problem: a platform, a strategy from the
// registry, a communication model and the LP arithmetic. Strategies that
// work on fixed orders additionally read Send (and Return); the affine
// strategies read Affine. The zero values of Model and Arith select the
// one-port model and the solver's default arithmetic.
type Request struct {
	// Platform is the star platform to schedule. Required.
	Platform *Platform
	// Strategy names a registered strategy (see Strategies). Required.
	Strategy string
	// Model selects the communication model. Zero value: OnePort.
	Model Model
	// Arith selects the LP arithmetic. The zero value (Float64) defers to
	// the solver default configured with WithArith. Arith == Exact forces
	// the exact-rational evaluation backend regardless of Eval.
	Arith Arith
	// Eval selects the scenario-evaluation backend: EvalAuto (the zero
	// value and the default everywhere) tiers closed-form load recurrences
	// and the direct tight-system solver over the simplex; EvalClosedForm,
	// EvalDirect, EvalSimplex and EvalExact pin a single backend. See
	// internal/eval for the backend semantics.
	Eval EvalMode
	// Send is the send order for the fixed-order strategies
	// (StrategyFIFOOrder, StrategyLIFOOrder, StrategyScenario,
	// StrategyScenarioAffine).
	Send Order
	// Return is the return order for StrategyScenario and
	// StrategyScenarioAffine.
	Return Order
	// Affine holds the per-worker fixed costs for the affine strategies.
	Affine *Affine
	// Load, when positive, asks for Result.Makespan = Load / throughput:
	// the time to process Load units under the computed schedule. Linear
	// model only — affine strategies leave Makespan at 0, because fixed
	// costs make their makespan non-linear in the load.
	Load float64
}

// Result is the outcome of one solve. Schedule is set by every linear-model
// strategy; the affine strategies set Affine instead (the canonical
// timeline of the linear model does not apply there).
type Result struct {
	// Strategy, Model, Arith and Eval echo the resolved request.
	Strategy string
	Model    Model
	Arith    Arith
	Eval     EvalMode
	// Schedule is the computed schedule (nil for affine strategies).
	Schedule *Schedule
	// Send and Return are the scenario orders the strategy settled on: the
	// winning full permutations for the exhaustive searches, the schedule's
	// pruned orders otherwise.
	Send   Order
	Return Order
	// Affine is the affine-model outcome (affine strategies only).
	Affine *AffineResult
	// Throughput is the optimal throughput ρ (load units per time unit).
	Throughput float64
	// Makespan is Load / Throughput when the request set Load and the
	// strategy produced a linear-model Schedule, else 0 (the linearity
	// argument does not hold under affine costs).
	Makespan float64
	// Cached reports that this result was served from the solver cache (or
	// deduplicated against an identical request in the same batch) rather
	// than recomputed.
	Cached bool
	// Degraded reports that the solver answered with a closed-form
	// heuristic instead of running the requested exhaustive search,
	// because the solve-cost estimate predicted the search would bust the
	// deadline (WithDegradation). DegradedTo names the strategy actually
	// used; Strategy still echoes the request.
	Degraded   bool
	DegradedTo string
}

// clone returns a deep copy so cached results stay immutable.
func (r *Result) clone() *Result {
	c := *r
	if r.Schedule != nil {
		c.Schedule = r.Schedule.Clone()
	}
	c.Send = r.Send.Clone()
	c.Return = r.Return.Clone()
	if r.Affine != nil {
		a := *r.Affine
		a.Send = r.Affine.Send.Clone()
		a.Return = r.Affine.Return.Clone()
		a.Alpha = append([]float64(nil), r.Affine.Alpha...)
		c.Affine = &a
	}
	return &c
}

// Stats are cumulative counters of one Solver's activity. The snapshot is
// taken from atomic counters, so it is safe to call concurrently with
// solves; the fields are mutually consistent only up to in-flight requests.
type Stats struct {
	// Hits and Misses count cache lookups (always zero without WithCache);
	// Evictions counts entries dropped by the LRU when the cache is full.
	Hits, Misses, Evictions uint64
	// Solves counts strategy executions — the expensive LP work. A request
	// answered by the cache or by batch deduplication does not solve.
	Solves uint64
	// SolvesByStrategy splits Solves by strategy name.
	SolvesByStrategy map[string]uint64
	// PrepassGroups counts deduplicated problems answered by the SoA chain
	// prepass instead of a per-request solve; PrepassRequests counts the
	// requests those groups answered (duplicates included). These are the
	// batch-collapse counters: PrepassRequests - PrepassGroups requests
	// never touched a solver goroutine of their own.
	PrepassGroups, PrepassRequests uint64
	// Windows counts admission windows flushed by batchers of this solver
	// (micro-batching and SolveStream); BatchedWindows counts the windows
	// that collapsed at least two requests into one SolveBatch, and
	// BatchedRequests the requests that travelled in them.
	Windows, BatchedWindows, BatchedRequests uint64
	// Shed counts submissions rejected by a batcher because its admission
	// queue was full (load shedding), including the SLO sheds below.
	Shed uint64
	// ShedSLO counts the subset of Shed dropped by the adaptive policy's
	// deadline-aware check: requests that provably could not meet their
	// SLO deadline (ErrSLOUnmeetable).
	ShedSLO uint64
	// ShedByClass and ViolationsByClass split load shedding and deadline
	// violations (requests answered after their SLO deadline) by SLO
	// class name ("" is the best-effort class).
	ShedByClass, ViolationsByClass map[string]uint64
	// Degraded counts solves answered by a closed-form heuristic in place
	// of the requested exhaustive search (WithDegradation);
	// DegradedByStrategy splits them by the heuristic actually used.
	Degraded           uint64
	DegradedByStrategy map[string]uint64
	// PairSearch is the cumulative pair-search instrumentation (process
	// global: every pair search in the process advances it, whichever
	// Solver ran it).
	PairSearch PairSearchStats
	// AffineSearch is the cumulative affine subset-search instrumentation
	// (process global, like PairSearch).
	AffineSearch AffineSearchStats
}

// PairSearchStats counts the exhaustive pair search's branch-and-bound
// activity. The counters are process-global atomics shared by all solvers;
// they make the bound's pruning effectiveness observable in production
// (dlsd re-exports them on /metrics as dlsd_pair_search_*).
type PairSearchStats struct {
	// OuterPruned counts send orders whose entire return-order tree was
	// discarded by the root bound before expansion.
	OuterPruned uint64
	// NodesExpanded counts branch-and-bound nodes whose children were
	// generated.
	NodesExpanded uint64
	// SubtreesPruned counts subtrees cut by the return-prefix bound.
	SubtreesPruned uint64
	// LeavesEvaluated counts complete return orders whose throughput was
	// actually computed.
	LeavesEvaluated uint64
}

// AffineSearchStats counts the affine subset search's lattice
// branch-and-bound activity. The counters are process-global atomics
// shared by all solvers; dlsd re-exports them on /metrics as
// dlsd_affine_search_*.
type AffineSearchStats struct {
	// NodesExpanded counts interior lattice nodes whose include/exclude
	// children were generated.
	NodesExpanded uint64
	// SubtreesPruned counts half-lattices cut against the incumbent.
	SubtreesPruned uint64
	// LeavesEvaluated counts participant subsets whose scenario LP was
	// actually solved (the flat loop counts every non-empty mask).
	LeavesEvaluated uint64
	// BoundSolves counts relaxation LPs solved on exclude edges.
	BoundSolves uint64
}

// Solver is the scheduling engine: it resolves requests against the
// strategy registry, optionally memoizes results in an LRU cache, bounds
// solve time, and fans batches out over a worker pool. A Solver is safe for
// concurrent use; the zero-argument NewSolver() yields a cache-less solver
// with parallelism GOMAXPROCS.
type Solver struct {
	arith        Arith
	timeout      time.Duration
	parallelism  int
	searchPar    int
	streamWindow time.Duration
	cache        *resultCache
	degrade      bool
	costs        costTracker

	hits, misses, solves atomic.Uint64
	solvesBy             stats.CounterMap[string]
	degraded             atomic.Uint64
	degradedBy           stats.CounterMap[string]

	prepassGroups, prepassRequests           atomic.Uint64
	windows, batchedWindows, batchedRequests atomic.Uint64
	shed, shedSLO                            atomic.Uint64
	shedByClass, violationsByClass           stats.CounterMap[string]
}

// countSolve records one strategy execution, both globally and per
// strategy.
func (s *Solver) countSolve(strategy string) {
	s.solves.Add(1)
	s.solvesBy.Add(strategy, 1)
}

// Option configures a Solver; options report invalid settings as errors
// from NewSolver.
type Option func(*Solver) error

// WithArith sets the default LP arithmetic applied to requests that leave
// Arith at its zero value.
func WithArith(a Arith) Option {
	return func(s *Solver) error {
		if a != Float64 && a != Exact {
			return fmt.Errorf("dls: WithArith: unknown arithmetic %d", int(a))
		}
		s.arith = a
		return nil
	}
}

// WithTimeout bounds every Solve call (including each request of a batch):
// the strategy's context is cancelled after d, which aborts the exponential
// exhaustive searches mid-enumeration.
func WithTimeout(d time.Duration) Option {
	return func(s *Solver) error {
		if d <= 0 {
			return fmt.Errorf("dls: WithTimeout: duration must be positive, got %v", d)
		}
		s.timeout = d
		return nil
	}
}

// WithCache enables an LRU result cache of the given capacity, keyed by
// (platform fingerprint, strategy, model, arithmetic, orders, affine
// costs). A capacity of 0 disables caching (the default).
func WithCache(capacity int) Option {
	return func(s *Solver) error {
		if capacity < 0 {
			return fmt.Errorf("dls: WithCache: capacity must be >= 0, got %d", capacity)
		}
		if capacity == 0 {
			s.cache = nil
			return nil
		}
		s.cache = newResultCache(capacity)
		return nil
	}
}

// WithParallelism sets the worker-pool size used by SolveBatch and
// SolveStream. Output is deterministic regardless of the setting; it only
// changes how many requests are solved concurrently.
func WithParallelism(n int) Option {
	return func(s *Solver) error {
		if n <= 0 {
			return fmt.Errorf("dls: WithParallelism: parallelism must be >= 1, got %d", n)
		}
		s.parallelism = n
		return nil
	}
}

// WithSearchParallelism sets how many workers the exhaustive order-space
// searches (brute, brute-lifo, brute-pair) use WITHIN one request: the
// permutation space is split by SJT rank across a worker pool (work
// stealing for the pair branch-and-bound, static ranges for the order
// sweeps). n ≤ 0 — the default — uses one worker per CPU; n == 1 forces
// the serial search. The search result is byte-identical for every
// setting: worker count changes wall-clock time and nothing else. This is
// independent of WithParallelism, which fans out ACROSS requests.
func WithSearchParallelism(n int) Option {
	return func(s *Solver) error {
		if n <= 0 {
			n = 0
		}
		s.searchPar = n
		return nil
	}
}

// DefaultStreamWindow is the admission window SolveStream batches under
// when WithStreamWindow is not given: long enough for bursts to coalesce
// into one SolveBatch (and its SoA chain prepass), short enough to be
// invisible next to any LP solve.
const DefaultStreamWindow = 2 * time.Millisecond

// WithStreamWindow sets the admission window of SolveStream's micro-
// batcher: requests arriving within d of each other are flushed as one
// SolveBatch, so chain-shaped streams hit the SoA prepass. d = 0 disables
// stream micro-batching (each request solves on its own, the historical
// behaviour); the default is DefaultStreamWindow.
func WithStreamWindow(d time.Duration) Option {
	return func(s *Solver) error {
		if d < 0 {
			return fmt.Errorf("dls: WithStreamWindow: duration must be >= 0, got %v", d)
		}
		s.streamWindow = d
		return nil
	}
}

// NewSolver builds a Solver from the given options.
func NewSolver(opts ...Option) (*Solver, error) {
	s := &Solver{
		arith:        Float64,
		parallelism:  runtime.GOMAXPROCS(0),
		streamWindow: DefaultStreamWindow,
	}
	for _, opt := range opts {
		if err := opt(s); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Stats returns a snapshot of the solver's counters.
func (s *Solver) Stats() Stats {
	st := Stats{
		Hits:            s.hits.Load(),
		Misses:          s.misses.Load(),
		Solves:          s.solves.Load(),
		PrepassGroups:   s.prepassGroups.Load(),
		PrepassRequests: s.prepassRequests.Load(),
		Windows:         s.windows.Load(),
		BatchedWindows:  s.batchedWindows.Load(),
		BatchedRequests: s.batchedRequests.Load(),
		Shed:            s.shed.Load(),
		ShedSLO:         s.shedSLO.Load(),
		Degraded:        s.degraded.Load(),
	}
	if s.cache != nil {
		st.Evictions = s.cache.evictions.Load()
	}
	st.SolvesByStrategy = s.solvesBy.Snapshot()
	st.DegradedByStrategy = s.degradedBy.Snapshot()
	st.ShedByClass = s.shedByClass.Snapshot()
	st.ViolationsByClass = s.violationsByClass.Snapshot()
	ps := core.PairStatsSnapshot()
	st.PairSearch = PairSearchStats{
		OuterPruned:     ps.OuterPruned,
		NodesExpanded:   ps.NodesExpanded,
		SubtreesPruned:  ps.SubtreesPruned,
		LeavesEvaluated: ps.LeavesEvaluated,
	}
	as := core.AffineStatsSnapshot()
	st.AffineSearch = AffineSearchStats{
		NodesExpanded:   as.NodesExpanded,
		SubtreesPruned:  as.SubtreesPruned,
		LeavesEvaluated: as.LeavesEvaluated,
		BoundSolves:     as.BoundSolves,
	}
	return st
}

// prepare validates a request, applies the solver's arithmetic default and
// resolves the strategy.
func (s *Solver) prepare(req Request) (Request, StrategyFunc, error) {
	if req.Platform == nil {
		return req, nil, fmt.Errorf("dls: request has no platform")
	}
	if err := req.Platform.Validate(); err != nil {
		return req, nil, err
	}
	if req.Strategy == "" {
		return req, nil, fmt.Errorf("dls: request has no strategy (registered: %s)", strings.Join(Strategies(), ", "))
	}
	fn, ok := lookupStrategy(req.Strategy)
	if !ok {
		return req, nil, fmt.Errorf("dls: unknown strategy %q (registered: %s)", req.Strategy, strings.Join(Strategies(), ", "))
	}
	if req.Model != OnePort && req.Model != TwoPort {
		return req, nil, fmt.Errorf("dls: unknown model %d", int(req.Model))
	}
	if req.Arith == Float64 {
		req.Arith = s.arith
	} else if req.Arith != Exact {
		return req, nil, fmt.Errorf("dls: unknown arithmetic %d", int(req.Arith))
	}
	if !req.Eval.Valid() {
		return req, nil, fmt.Errorf("dls: unknown eval mode %d (known: %s)", int(req.Eval), eval.ModeNames())
	}
	// Normalise the two knobs: exact arithmetic and the exact backend are
	// the same request, whichever field expressed it.
	if req.Arith == Exact {
		req.Eval = EvalExact
	} else if req.Eval == EvalExact {
		req.Arith = Exact
	}
	if req.Load < 0 || math.IsNaN(req.Load) || math.IsInf(req.Load, 0) {
		return req, nil, fmt.Errorf("dls: request load %g must be finite and >= 0", req.Load)
	}
	return req, fn, nil
}

// cacheKey builds the memoization key of a prepared request. Load is
// excluded: Makespan is derived from the cached throughput per request.
func (req Request) cacheKey() string {
	var b strings.Builder
	b.WriteString(req.Platform.Fingerprint())
	fmt.Fprintf(&b, "|%s|%d|%d|%d|%v|%v", req.Strategy, int(req.Model), int(req.Arith), int(req.Eval), []int(req.Send), []int(req.Return))
	if req.Affine != nil {
		fmt.Fprintf(&b, "|aff-%016x", platform.HashFloats(req.Affine.In, req.Affine.Out, req.Affine.Comp))
	}
	return b.String()
}

// finish stamps the derived fields of a result for one specific request.
func finish(res *Result, req Request, cached bool) *Result {
	res.Strategy = req.Strategy
	res.Model = req.Model
	res.Arith = req.Arith
	res.Eval = req.Eval
	res.Cached = cached
	switch {
	case res.Schedule != nil:
		res.Throughput = res.Schedule.Throughput()
	case res.Affine != nil:
		res.Throughput = res.Affine.Throughput
	}
	// Makespan comes from linearity (load/ρ), which only holds for the
	// linear cost model — never derive it for affine results.
	if req.Load > 0 && res.Schedule != nil && res.Throughput > 0 {
		res.Makespan = req.Load / res.Throughput
	} else {
		res.Makespan = 0
	}
	return res
}

// Solve runs one request through its strategy, consulting the cache first
// when one is configured. Strategy errors are returned unwrapped, so
// sentinel checks like errors.Is(err, ErrNoCommonZ) keep working; context
// cancellation and the WithTimeout deadline surface as ctx.Err().
func (s *Solver) Solve(ctx context.Context, req Request) (*Result, error) {
	req, fn, err := s.prepare(req)
	if err != nil {
		return nil, err
	}
	traced := obs.Enabled(ctx)
	if traced {
		obs.Annotate(ctx, obs.String("strategy", req.Strategy))
	}
	var key string
	if s.cache != nil {
		key = req.cacheKey()
		if res, ok := s.cache.get(key); ok {
			s.hits.Add(1)
			if traced {
				obs.Annotate(ctx, obs.String("cache", "hit"))
			}
			return finish(res, req, true), nil
		}
		s.misses.Add(1)
		if traced {
			obs.Annotate(ctx, obs.String("cache", "miss"))
		}
	}
	res, err := s.run(ctx, req, fn)
	if err != nil {
		return nil, err
	}
	// Degraded answers are deadline-driven substitutes, not the
	// strategy's optimum: caching one would serve a heuristic to later
	// callers with generous deadlines.
	if s.cache != nil && !res.Degraded {
		s.cache.put(key, res)
	}
	return finish(res, req, false), nil
}

// run executes the strategy under the solver timeout, with the solver's
// search parallelism on the context for the exhaustive searches.
func (s *Solver) run(ctx context.Context, req Request, fn StrategyFunc) (*Result, error) {
	if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}
	ctx = core.ContextWithSearchParallelism(ctx, s.searchPar)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if res, ok := s.maybeDegrade(ctx, req); ok {
		if obs.Enabled(ctx) {
			obs.Annotate(ctx,
				obs.String("degraded", "true"),
				obs.String("degraded_to", res.DegradedTo))
		}
		return res, nil
	}
	s.countSolve(req.Strategy)
	start := time.Now()
	t0 := obs.Now(ctx)
	res, err := fn(ctx, req)
	if err != nil {
		return nil, err
	}
	if res == nil {
		return nil, fmt.Errorf("dls: strategy %q returned neither result nor error", req.Strategy)
	}
	s.costs.observe(req.Strategy, req.Platform.P(), time.Since(start))
	if obs.Enabled(ctx) {
		obs.StageAt(ctx, 1, "strategy", t0, obs.Now(ctx), obs.String("name", req.Strategy))
	}
	return res, nil
}

// SolveBatch solves many requests across the solver's worker pool and
// returns results aligned with reqs: results[i] answers reqs[i]. Identical
// requests (same cache key) are solved once and fanned out, with the
// duplicates marked Cached. The output is deterministic — byte-identical
// across parallelism settings — because every per-request computation is
// itself deterministic and ordering never leaks into results. Failed
// requests leave a nil slot; the returned error joins the per-request
// errors in request order.
func (s *Solver) SolveBatch(ctx context.Context, reqs []Request) ([]*Result, error) {
	results, errs := s.solveBatch(ctx, reqs)
	for i, err := range errs {
		if err != nil {
			errs[i] = fmt.Errorf("dls: batch request %d: %w", i, err)
		}
	}
	return results, errors.Join(errs...)
}

// solveBatch is SolveBatch with the per-slot errors kept individually (and
// unwrapped), for callers — the micro-batcher, the serving layer — that
// answer each request to a different consumer.
func (s *Solver) solveBatch(ctx context.Context, reqs []Request) ([]*Result, []error) {
	return s.solveBatchTraced(ctx, reqs, nil)
}

// solveBatchTraced is solveBatch with per-request trace sets: when traces
// is non-nil, traces[i] holds the obs traces following request i, and each
// deduplicated group's solve runs under the union of its members' traces —
// so a submission answered by a leader it never met still sees the stages
// of the solve that produced its result. With traces == nil, every group
// solves under ctx unchanged.
func (s *Solver) solveBatchTraced(ctx context.Context, reqs []Request, traces [][]*obs.Trace) ([]*Result, []error) {
	results := make([]*Result, len(reqs))
	errs := make([]error, len(reqs))

	// Deduplicate by cache key: one solve per distinct problem.
	groups := make(map[string]*group, len(reqs))
	order := make([]*group, 0, len(reqs))
	prepared := make([]Request, len(reqs))
	for i, req := range reqs {
		p, _, err := s.prepare(req)
		if err != nil {
			errs[i] = err
			continue
		}
		prepared[i] = p
		key := p.cacheKey()
		g, ok := groups[key]
		if !ok {
			g = &group{leader: i, key: key}
			groups[key] = g
			order = append(order, g)
		}
		g.indices = append(g.indices, i)
	}

	// groupCtx derives the context one group's solve runs under: the
	// window context plus the union of the group's member traces (dedup
	// fan-out is annotated so a collapsed request's trace says why its
	// solve stage was shared).
	groupCtx := func(g *group) context.Context {
		if traces == nil {
			return ctx
		}
		var ts []*obs.Trace
		for _, i := range g.indices {
			if i < len(traces) {
				ts = append(ts, traces[i]...)
			}
		}
		if len(ts) == 0 {
			return ctx
		}
		gctx := obs.ContextWithTraces(ctx, ts)
		if len(g.indices) > 1 {
			obs.Annotate(gctx, obs.Int("dedup_group", len(g.indices)))
		}
		return gctx
	}

	// Chain prepass: chain-shaped leaders of the same size are evaluated
	// together by structure-of-arrays lockstep sweeps before the pool
	// starts; everything it could not certify flows through the normal
	// per-request path below.
	handled := s.chainPrepass(ctx, prepared, order, results, errs, groupCtx)

	// Solve one leader per group on the pool (never more workers than
	// groups to solve).
	jobs := make(chan *group)
	var wg sync.WaitGroup
	workers := s.parallelism
	if workers > len(order)-len(handled) {
		workers = len(order) - len(handled)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for g := range jobs {
				res, err := s.Solve(groupCtx(g), reqs[g.leader])
				if err != nil {
					for _, i := range g.indices {
						errs[i] = err
					}
					continue
				}
				for _, i := range g.indices {
					if i == g.leader {
						results[i] = res
						continue
					}
					// Duplicates get their own copy, finished against their
					// own Load, and are marked as served without a solve.
					results[i] = finish(res.clone(), prepared[i], true)
				}
			}
		}()
	}
	for _, g := range order {
		if handled[g] {
			continue
		}
		jobs <- g
	}
	close(jobs)
	wg.Wait()

	return results, errs
}

// chainScenario reports whether a prepared request is chain-shaped — its
// strategy resolves to one fixed FIFO (σ2 = σ1) or LIFO (σ2 = reverse σ1)
// scenario solvable by the closed-form chains under the tiered Auto
// pipeline in float64 — and derives its send order. The order derivations
// deliberately mirror the strategies in strategy.go (and OptimalLIFOEval
// in internal/core); TestSolveBatchChainPrepassMatchesSolve pins the two
// paths to identical results for every strategy listed here, so a drift
// in either side fails the suite.
func chainScenario(req Request) (send Order, lifo, ok bool) {
	if req.Eval != EvalAuto || req.Arith != Float64 {
		return nil, false, false
	}
	switch req.Strategy {
	case StrategyIncC:
		return req.Platform.ByC(), false, true
	case StrategyIncW:
		return req.Platform.ByW(), false, true
	case StrategyDecC:
		return req.Platform.ByCDesc(), false, true
	case StrategyFIFOOrder:
		return req.Send, false, true
	case StrategyLIFOOrder:
		return req.Send, true, true
	case StrategyLIFO:
		// The optimal one-port LIFO schedule enrolls everyone by
		// non-decreasing c; the two-port variant routes differently.
		if req.Model != OnePort {
			return nil, false, false
		}
		return req.Platform.ByC(), true, true
	case StrategyScenario:
		if len(req.Send) == 0 || len(req.Send) != len(req.Return) {
			return nil, false, false
		}
		fifo, rev := true, true
		n := len(req.Send)
		for k := 0; k < n; k++ {
			if req.Return[k] != req.Send[k] {
				fifo = false
			}
			if req.Return[k] != req.Send[n-1-k] {
				rev = false
			}
		}
		switch {
		case fifo:
			return req.Send, false, true
		case rev:
			return req.Send, true, true
		}
	}
	return nil, false, false
}

// chainPrepass collapses chain-shaped requests of the same scenario size
// into eval.Batch lockstep evaluations: the lanes' platform columns are
// laid out structure-of-arrays and the closed-form load and dual chains
// run across all lanes at each position step. Certified lanes produce
// verified schedules identical to what their strategies would compute
// (same tiers, same canonicalisation), and fan out to their duplicate
// requests exactly like pool-solved groups; lanes whose chain certificate
// fails — port-bound or resource-selecting optima — are left for the
// normal path. Returns the set of fully answered groups. A done context
// (cancelled, or a WithTimeout deadline that already expired) skips the
// prepass entirely so every request uniformly reports ctx.Err() from the
// pool path.
func (s *Solver) chainPrepass(ctx context.Context, prepared []Request, order []*group, results []*Result, errs []error, groupCtx func(*group) context.Context) map[*group]bool {
	if ctx.Err() != nil {
		return nil
	}
	type lane struct {
		g    *group
		send Order
		lifo bool
	}
	byKey := make(map[batchKey][]lane)
	for _, g := range order {
		if errs[g.leader] != nil {
			continue
		}
		req := prepared[g.leader]
		send, lifo, ok := chainScenario(req)
		if !ok || len(send) == 0 {
			continue
		}
		if s.cache != nil && s.cache.has(g.key) {
			continue // the pool path serves (and counts) the cache hit
		}
		key := batchKey{q: len(send), lifo: lifo, model: req.Model}
		byKey[key] = append(byKey[key], lane{g: g, send: send, lifo: lifo})
	}
	handled := make(map[*group]bool)
	for key, lanes := range byKey {
		if len(lanes) < 2 {
			continue // lockstep only pays with company; a lone lane solves normally
		}
		b, err := eval.NewBatch(key.model, key.lifo, key.q)
		if err != nil {
			continue
		}
		added := lanes[:0]
		for _, ln := range lanes {
			// Invalid orders fall through to the strategy, which reports
			// the real error.
			if b.Add(prepared[ln.g.leader].Platform, ln.send) == nil {
				added = append(added, ln)
			}
		}
		b.Run()
		for i, ln := range added {
			sched, err := b.Schedule(i)
			if err != nil {
				continue // uncertified: the pool path re-evaluates in full
			}
			req := prepared[ln.g.leader]
			res := finish(&Result{Schedule: sched, Send: sched.SendOrder, Return: sched.ReturnOrder}, req, false)
			if s.cache != nil {
				s.misses.Add(1)
				s.cache.put(ln.g.key, res)
			}
			s.countSolve(req.Strategy)
			s.prepassGroups.Add(1)
			s.prepassRequests.Add(uint64(len(ln.g.indices)))
			if gc := groupCtx(ln.g); obs.Enabled(gc) {
				obs.Annotate(gc,
					obs.String("strategy", req.Strategy),
					obs.String("prepass", "chain"))
			}
			for _, idx := range ln.g.indices {
				if idx == ln.g.leader {
					results[idx] = res
					continue
				}
				results[idx] = finish(res.clone(), prepared[idx], true)
			}
			handled[ln.g] = true
		}
	}
	return handled
}

// batchKey groups chain-prepass lanes that can share one eval.Batch.
type batchKey struct {
	q     int
	lifo  bool
	model Model
}

// group is one deduplicated SolveBatch problem: the first request index
// holding its cache key and every index it answers.
type group struct {
	leader  int
	key     string
	indices []int
}

// StreamResult is one element of a SolveStream: the result (or error) of
// the Index-th request read from the input channel.
type StreamResult struct {
	Index  int
	Result *Result
	Err    error
}

// SolveStream consumes requests from reqs as they arrive and emits results
// on the returned channel in input order (a reorder buffer holds finished
// results until their predecessors complete; admission is bounded, so one
// slow request at the head cannot make the buffer grow past a small
// multiple of the parallelism). Concurrent requests are solved through an
// admission-window micro-batcher: arrivals within WithStreamWindow of
// each other are flushed as one SolveBatch, so chain-shaped streams
// collapse into the SoA batch prepass instead of solo solves. A request
// travelling alone — nothing else in flight, so the window could not buy
// company — skips the window and solves directly: sparse or sequential
// streams pay no batching latency. At most WithParallelism requests are
// in flight at once, as before the batcher. Results are identical on
// either path — the prepass is pinned byte-identical to Solve — and the
// output stays deterministic. The output channel closes after the last
// result once reqs is closed. The caller must drain the output channel;
// cancelling ctx makes remaining requests fail fast with ctx.Err().
func (s *Solver) SolveStream(ctx context.Context, reqs <-chan Request) <-chan StreamResult {
	out := make(chan StreamResult, s.parallelism)
	done := make(chan StreamResult, s.parallelism)
	// window bounds dispatched-but-not-yet-emitted requests, capping the
	// reorder buffer; slots caps requests between admission and result to
	// the solver parallelism, preserving the WithParallelism contract
	// (the batcher never sheds stream requests, it backpressures the
	// feeder through the slots).
	inFlight := 4 * s.parallelism
	window := make(chan struct{}, inFlight)
	slots := make(chan struct{}, s.parallelism)
	b := s.NewBatcher(BatcherConfig{
		MaxDelay: s.streamWindow,
		MaxSize:  s.parallelism,
		QueueCap: inFlight,
	})

	var wg sync.WaitGroup
	go func() {
		idx := 0
		for req := range reqs {
			window <- struct{}{}
			slots <- struct{}{}
			// The feeder is the only slot producer, so observing exactly
			// one occupied slot here means this request is alone in the
			// stream right now (races only defer a request to the window,
			// never lose one).
			alone := len(slots) == 1
			wg.Add(1)
			go func(i int, r Request, alone bool) {
				defer wg.Done()
				var (
					res *Result
					err error
				)
				if alone {
					res, err = s.Solve(ctx, r)
				} else {
					res, err = b.Submit(ctx, r)
				}
				<-slots
				done <- StreamResult{Index: i, Result: res, Err: err}
			}(idx, req, alone)
			idx++
		}
		wg.Wait()
		b.Close()
		close(done)
	}()

	go func() {
		defer close(out)
		next := 0
		pending := make(map[int]StreamResult)
		for sr := range done {
			pending[sr.Index] = sr
			for {
				v, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				out <- v
				<-window
				next++
			}
		}
	}()
	return out
}

// The default solver backs the package-level Solve/SolveBatch helpers and
// the deprecated free functions: no cache (every call recomputes, matching
// the historical semantics), parallelism GOMAXPROCS.
var (
	defaultSolverOnce sync.Once
	defaultSolver     *Solver
)

// DefaultSolver returns the shared package-level solver.
func DefaultSolver() *Solver {
	defaultSolverOnce.Do(func() {
		defaultSolver, _ = NewSolver()
	})
	return defaultSolver
}

// Solve runs one request on the default solver.
func Solve(ctx context.Context, req Request) (*Result, error) {
	return DefaultSolver().Solve(ctx, req)
}

// SolveBatch solves a batch on the default solver.
func SolveBatch(ctx context.Context, reqs []Request) ([]*Result, error) {
	return DefaultSolver().SolveBatch(ctx, reqs)
}
