package dls

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/eval"
	"repro/internal/platform"
)

// Request names one scheduling problem: a platform, a strategy from the
// registry, a communication model and the LP arithmetic. Strategies that
// work on fixed orders additionally read Send (and Return); the affine
// strategies read Affine. The zero values of Model and Arith select the
// one-port model and the solver's default arithmetic.
type Request struct {
	// Platform is the star platform to schedule. Required.
	Platform *Platform
	// Strategy names a registered strategy (see Strategies). Required.
	Strategy string
	// Model selects the communication model. Zero value: OnePort.
	Model Model
	// Arith selects the LP arithmetic. The zero value (Float64) defers to
	// the solver default configured with WithArith. Arith == Exact forces
	// the exact-rational evaluation backend regardless of Eval.
	Arith Arith
	// Eval selects the scenario-evaluation backend: EvalAuto (the zero
	// value and the default everywhere) tiers closed-form load recurrences
	// and the direct tight-system solver over the simplex; EvalClosedForm,
	// EvalDirect, EvalSimplex and EvalExact pin a single backend. See
	// internal/eval for the backend semantics.
	Eval EvalMode
	// Send is the send order for the fixed-order strategies
	// (StrategyFIFOOrder, StrategyLIFOOrder, StrategyScenario,
	// StrategyScenarioAffine).
	Send Order
	// Return is the return order for StrategyScenario and
	// StrategyScenarioAffine.
	Return Order
	// Affine holds the per-worker fixed costs for the affine strategies.
	Affine *Affine
	// Load, when positive, asks for Result.Makespan = Load / throughput:
	// the time to process Load units under the computed schedule. Linear
	// model only — affine strategies leave Makespan at 0, because fixed
	// costs make their makespan non-linear in the load.
	Load float64
}

// Result is the outcome of one solve. Schedule is set by every linear-model
// strategy; the affine strategies set Affine instead (the canonical
// timeline of the linear model does not apply there).
type Result struct {
	// Strategy, Model, Arith and Eval echo the resolved request.
	Strategy string
	Model    Model
	Arith    Arith
	Eval     EvalMode
	// Schedule is the computed schedule (nil for affine strategies).
	Schedule *Schedule
	// Send and Return are the scenario orders the strategy settled on: the
	// winning full permutations for the exhaustive searches, the schedule's
	// pruned orders otherwise.
	Send   Order
	Return Order
	// Affine is the affine-model outcome (affine strategies only).
	Affine *AffineResult
	// Throughput is the optimal throughput ρ (load units per time unit).
	Throughput float64
	// Makespan is Load / Throughput when the request set Load and the
	// strategy produced a linear-model Schedule, else 0 (the linearity
	// argument does not hold under affine costs).
	Makespan float64
	// Cached reports that this result was served from the solver cache (or
	// deduplicated against an identical request in the same batch) rather
	// than recomputed.
	Cached bool
}

// clone returns a deep copy so cached results stay immutable.
func (r *Result) clone() *Result {
	c := *r
	if r.Schedule != nil {
		c.Schedule = r.Schedule.Clone()
	}
	c.Send = r.Send.Clone()
	c.Return = r.Return.Clone()
	if r.Affine != nil {
		a := *r.Affine
		a.Send = r.Affine.Send.Clone()
		a.Return = r.Affine.Return.Clone()
		a.Alpha = append([]float64(nil), r.Affine.Alpha...)
		c.Affine = &a
	}
	return &c
}

// Stats are cumulative counters of one Solver's activity.
type Stats struct {
	// Hits and Misses count cache lookups (always zero without WithCache).
	Hits, Misses uint64
	// Solves counts strategy executions — the expensive LP work. A request
	// answered by the cache or by batch deduplication does not solve.
	Solves uint64
}

// Solver is the scheduling engine: it resolves requests against the
// strategy registry, optionally memoizes results in an LRU cache, bounds
// solve time, and fans batches out over a worker pool. A Solver is safe for
// concurrent use; the zero-argument NewSolver() yields a cache-less solver
// with parallelism GOMAXPROCS.
type Solver struct {
	arith       Arith
	timeout     time.Duration
	parallelism int
	cache       *resultCache

	hits, misses, solves atomic.Uint64
}

// Option configures a Solver; options report invalid settings as errors
// from NewSolver.
type Option func(*Solver) error

// WithArith sets the default LP arithmetic applied to requests that leave
// Arith at its zero value.
func WithArith(a Arith) Option {
	return func(s *Solver) error {
		if a != Float64 && a != Exact {
			return fmt.Errorf("dls: WithArith: unknown arithmetic %d", int(a))
		}
		s.arith = a
		return nil
	}
}

// WithTimeout bounds every Solve call (including each request of a batch):
// the strategy's context is cancelled after d, which aborts the exponential
// exhaustive searches mid-enumeration.
func WithTimeout(d time.Duration) Option {
	return func(s *Solver) error {
		if d <= 0 {
			return fmt.Errorf("dls: WithTimeout: duration must be positive, got %v", d)
		}
		s.timeout = d
		return nil
	}
}

// WithCache enables an LRU result cache of the given capacity, keyed by
// (platform fingerprint, strategy, model, arithmetic, orders, affine
// costs). A capacity of 0 disables caching (the default).
func WithCache(capacity int) Option {
	return func(s *Solver) error {
		if capacity < 0 {
			return fmt.Errorf("dls: WithCache: capacity must be >= 0, got %d", capacity)
		}
		if capacity == 0 {
			s.cache = nil
			return nil
		}
		s.cache = newResultCache(capacity)
		return nil
	}
}

// WithParallelism sets the worker-pool size used by SolveBatch and
// SolveStream. Output is deterministic regardless of the setting; it only
// changes how many requests are solved concurrently.
func WithParallelism(n int) Option {
	return func(s *Solver) error {
		if n <= 0 {
			return fmt.Errorf("dls: WithParallelism: parallelism must be >= 1, got %d", n)
		}
		s.parallelism = n
		return nil
	}
}

// NewSolver builds a Solver from the given options.
func NewSolver(opts ...Option) (*Solver, error) {
	s := &Solver{
		arith:       Float64,
		parallelism: runtime.GOMAXPROCS(0),
	}
	for _, opt := range opts {
		if err := opt(s); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Stats returns a snapshot of the solver's counters.
func (s *Solver) Stats() Stats {
	return Stats{
		Hits:   s.hits.Load(),
		Misses: s.misses.Load(),
		Solves: s.solves.Load(),
	}
}

// prepare validates a request, applies the solver's arithmetic default and
// resolves the strategy.
func (s *Solver) prepare(req Request) (Request, StrategyFunc, error) {
	if req.Platform == nil {
		return req, nil, fmt.Errorf("dls: request has no platform")
	}
	if err := req.Platform.Validate(); err != nil {
		return req, nil, err
	}
	if req.Strategy == "" {
		return req, nil, fmt.Errorf("dls: request has no strategy (registered: %s)", strings.Join(Strategies(), ", "))
	}
	fn, ok := lookupStrategy(req.Strategy)
	if !ok {
		return req, nil, fmt.Errorf("dls: unknown strategy %q (registered: %s)", req.Strategy, strings.Join(Strategies(), ", "))
	}
	if req.Model != OnePort && req.Model != TwoPort {
		return req, nil, fmt.Errorf("dls: unknown model %d", int(req.Model))
	}
	if req.Arith == Float64 {
		req.Arith = s.arith
	} else if req.Arith != Exact {
		return req, nil, fmt.Errorf("dls: unknown arithmetic %d", int(req.Arith))
	}
	if !req.Eval.Valid() {
		return req, nil, fmt.Errorf("dls: unknown eval mode %d (known: %s)", int(req.Eval), eval.ModeNames())
	}
	// Normalise the two knobs: exact arithmetic and the exact backend are
	// the same request, whichever field expressed it.
	if req.Arith == Exact {
		req.Eval = EvalExact
	} else if req.Eval == EvalExact {
		req.Arith = Exact
	}
	if req.Load < 0 || math.IsNaN(req.Load) || math.IsInf(req.Load, 0) {
		return req, nil, fmt.Errorf("dls: request load %g must be finite and >= 0", req.Load)
	}
	return req, fn, nil
}

// cacheKey builds the memoization key of a prepared request. Load is
// excluded: Makespan is derived from the cached throughput per request.
func (req Request) cacheKey() string {
	var b strings.Builder
	b.WriteString(req.Platform.Fingerprint())
	fmt.Fprintf(&b, "|%s|%d|%d|%d|%v|%v", req.Strategy, int(req.Model), int(req.Arith), int(req.Eval), []int(req.Send), []int(req.Return))
	if req.Affine != nil {
		fmt.Fprintf(&b, "|aff-%016x", platform.HashFloats(req.Affine.In, req.Affine.Out, req.Affine.Comp))
	}
	return b.String()
}

// finish stamps the derived fields of a result for one specific request.
func finish(res *Result, req Request, cached bool) *Result {
	res.Strategy = req.Strategy
	res.Model = req.Model
	res.Arith = req.Arith
	res.Eval = req.Eval
	res.Cached = cached
	switch {
	case res.Schedule != nil:
		res.Throughput = res.Schedule.Throughput()
	case res.Affine != nil:
		res.Throughput = res.Affine.Throughput
	}
	// Makespan comes from linearity (load/ρ), which only holds for the
	// linear cost model — never derive it for affine results.
	if req.Load > 0 && res.Schedule != nil && res.Throughput > 0 {
		res.Makespan = req.Load / res.Throughput
	} else {
		res.Makespan = 0
	}
	return res
}

// Solve runs one request through its strategy, consulting the cache first
// when one is configured. Strategy errors are returned unwrapped, so
// sentinel checks like errors.Is(err, ErrNoCommonZ) keep working; context
// cancellation and the WithTimeout deadline surface as ctx.Err().
func (s *Solver) Solve(ctx context.Context, req Request) (*Result, error) {
	req, fn, err := s.prepare(req)
	if err != nil {
		return nil, err
	}
	var key string
	if s.cache != nil {
		key = req.cacheKey()
		if res, ok := s.cache.get(key); ok {
			s.hits.Add(1)
			return finish(res, req, true), nil
		}
		s.misses.Add(1)
	}
	res, err := s.run(ctx, req, fn)
	if err != nil {
		return nil, err
	}
	if s.cache != nil {
		s.cache.put(key, res)
	}
	return finish(res, req, false), nil
}

// run executes the strategy under the solver timeout.
func (s *Solver) run(ctx context.Context, req Request, fn StrategyFunc) (*Result, error) {
	if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.solves.Add(1)
	res, err := fn(ctx, req)
	if err != nil {
		return nil, err
	}
	if res == nil {
		return nil, fmt.Errorf("dls: strategy %q returned neither result nor error", req.Strategy)
	}
	return res, nil
}

// SolveBatch solves many requests across the solver's worker pool and
// returns results aligned with reqs: results[i] answers reqs[i]. Identical
// requests (same cache key) are solved once and fanned out, with the
// duplicates marked Cached. The output is deterministic — byte-identical
// across parallelism settings — because every per-request computation is
// itself deterministic and ordering never leaks into results. Failed
// requests leave a nil slot; the returned error joins the per-request
// errors in request order.
func (s *Solver) SolveBatch(ctx context.Context, reqs []Request) ([]*Result, error) {
	results := make([]*Result, len(reqs))
	errs := make([]error, len(reqs))

	// Deduplicate by cache key: one solve per distinct problem.
	type group struct {
		leader  int // first request index with this key
		indices []int
	}
	groups := make(map[string]*group, len(reqs))
	order := make([]*group, 0, len(reqs))
	prepared := make([]Request, len(reqs))
	for i, req := range reqs {
		p, _, err := s.prepare(req)
		if err != nil {
			errs[i] = fmt.Errorf("dls: batch request %d: %w", i, err)
			continue
		}
		prepared[i] = p
		key := p.cacheKey()
		g, ok := groups[key]
		if !ok {
			g = &group{leader: i}
			groups[key] = g
			order = append(order, g)
		}
		g.indices = append(g.indices, i)
	}

	// Solve one leader per group on the pool (never more workers than
	// groups to solve).
	jobs := make(chan *group)
	var wg sync.WaitGroup
	workers := s.parallelism
	if workers > len(order) {
		workers = len(order)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for g := range jobs {
				res, err := s.Solve(ctx, reqs[g.leader])
				if err != nil {
					for _, i := range g.indices {
						errs[i] = fmt.Errorf("dls: batch request %d: %w", i, err)
					}
					continue
				}
				for _, i := range g.indices {
					if i == g.leader {
						results[i] = res
						continue
					}
					// Duplicates get their own copy, finished against their
					// own Load, and are marked as served without a solve.
					results[i] = finish(res.clone(), prepared[i], true)
				}
			}
		}()
	}
	for _, g := range order {
		jobs <- g
	}
	close(jobs)
	wg.Wait()

	return results, errors.Join(errs...)
}

// StreamResult is one element of a SolveStream: the result (or error) of
// the Index-th request read from the input channel.
type StreamResult struct {
	Index  int
	Result *Result
	Err    error
}

// SolveStream consumes requests from reqs as they arrive, solves them on
// the worker pool, and emits results on the returned channel in input
// order (a reorder buffer holds finished results until their predecessors
// complete; admission is bounded, so one slow request at the head cannot
// make the buffer grow past a small multiple of the parallelism). The
// output channel closes after the last result once reqs is closed. The
// caller must drain the output channel; cancelling ctx makes remaining
// requests fail fast with ctx.Err().
func (s *Solver) SolveStream(ctx context.Context, reqs <-chan Request) <-chan StreamResult {
	out := make(chan StreamResult, s.parallelism)
	type job struct {
		idx int
		req Request
	}
	jobs := make(chan job)
	done := make(chan StreamResult, s.parallelism)
	// window bounds dispatched-but-not-yet-emitted requests, capping the
	// reorder buffer: the feeder acquires a slot per job, the reorderer
	// releases it when the result is emitted in order.
	window := make(chan struct{}, 4*s.parallelism)

	go func() {
		idx := 0
		for req := range reqs {
			window <- struct{}{}
			jobs <- job{idx, req}
			idx++
		}
		close(jobs)
	}()

	var wg sync.WaitGroup
	for w := 0; w < s.parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				res, err := s.Solve(ctx, j.req)
				done <- StreamResult{Index: j.idx, Result: res, Err: err}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(done)
	}()

	go func() {
		defer close(out)
		next := 0
		pending := make(map[int]StreamResult)
		for sr := range done {
			pending[sr.Index] = sr
			for {
				v, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				out <- v
				<-window
				next++
			}
		}
	}()
	return out
}

// The default solver backs the package-level Solve/SolveBatch helpers and
// the deprecated free functions: no cache (every call recomputes, matching
// the historical semantics), parallelism GOMAXPROCS.
var (
	defaultSolverOnce sync.Once
	defaultSolver     *Solver
)

// DefaultSolver returns the shared package-level solver.
func DefaultSolver() *Solver {
	defaultSolverOnce.Do(func() {
		defaultSolver, _ = NewSolver()
	})
	return defaultSolver
}

// Solve runs one request on the default solver.
func Solve(ctx context.Context, req Request) (*Result, error) {
	return DefaultSolver().Solve(ctx, req)
}

// SolveBatch solves a batch on the default solver.
func SolveBatch(ctx context.Context, reqs []Request) ([]*Result, error) {
	return DefaultSolver().SolveBatch(ctx, reqs)
}
