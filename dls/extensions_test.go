package dls_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/dls"
)

func TestFacadeAffine(t *testing.T) {
	p := dls.NewPlatform(
		dls.Worker{C: 0.05, W: 0.3, D: 0.025},
		dls.Worker{C: 0.08, W: 0.2, D: 0.04},
	)
	order := dls.Order{0, 1}
	zero, err := dls.SolveScenarioAffine(p, dls.ZeroAffine(2), order, order, dls.OnePort, dls.Float64)
	if err != nil {
		t.Fatal(err)
	}
	linear, err := dls.SolveScenario(p, order, order, dls.OnePort, dls.Float64)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(zero.Throughput-linear.Throughput()) > 1e-7 {
		t.Errorf("zero affine %g != linear %g", zero.Throughput, linear.Throughput())
	}
	aff := dls.ZeroAffine(2)
	aff.In[0], aff.In[1] = 0.1, 0.1
	best, err := dls.BestFIFOAffine(p, aff, dls.Float64)
	if err != nil {
		t.Fatal(err)
	}
	if !best.Feasible || best.Throughput <= 0 {
		t.Errorf("affine best: %+v", best)
	}
	if best.Throughput > zero.Throughput {
		t.Error("latency increased throughput")
	}
}

func TestFacadeTwoPort(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sp := dls.RandomSpeeds(rng, 5, dls.Heterogeneous)
	p := sp.Platform(dls.DefaultApp(100))
	two, err := dls.OptimalFIFOTwoPort(p, dls.Float64)
	if err != nil {
		t.Fatal(err)
	}
	one, err := dls.OptimalFIFO(p, dls.Float64)
	if err != nil {
		t.Fatal(err)
	}
	if two.Throughput() < one.Throughput()-1e-9 {
		t.Error("two-port below one-port")
	}
	lifo2, err := dls.OptimalLIFOTwoPort(p, dls.Float64)
	if err != nil {
		t.Fatal(err)
	}
	lifo1, err := dls.OptimalLIFO(p, dls.Float64)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lifo1.Throughput()-lifo2.Throughput()) > 1e-7 {
		t.Error("LIFO optima differ across models")
	}
	pen, err := dls.OnePortPenalty(p, dls.Float64)
	if err != nil {
		t.Fatal(err)
	}
	if pen < 1-1e-9 || pen > 2+1e-9 {
		t.Errorf("penalty %g outside [1, 2]", pen)
	}
}

func TestFacadeMultiRound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sp := dls.RandomSpeeds(rng, 4, dls.Heterogeneous)
	p := sp.Platform(dls.DefaultApp(150))
	loads := []float64{10, 10, 10, 10}
	params := dls.MultiRoundParams{Platform: p, Loads: loads, Order: p.ByC(), Rounds: 1}

	m1, err := dls.MultiRoundMakespan(params)
	if err != nil {
		t.Fatal(err)
	}
	sweep, err := dls.MultiRoundSweep(params, 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sweep[0]-m1) > 1e-12 {
		t.Errorf("sweep[0] = %g, Makespan(R=1) = %g", sweep[0], m1)
	}
	bestR, bestM, err := dls.BestRounds(params, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range sweep {
		if bestM > m+1e-12 {
			t.Errorf("best %g at R=%d not minimal in %v", bestM, bestR, sweep)
		}
	}
}
