package dls_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/dls"
)

func TestFacadeEndToEnd(t *testing.T) {
	// Build a platform, compute the optimal FIFO schedule, round to 100
	// units, simulate, and compare against the prediction — the full
	// public workflow.
	app := dls.DefaultApp(100)
	rng := rand.New(rand.NewSource(1))
	speeds := dls.RandomSpeeds(rng, 6, dls.Heterogeneous)
	p := speeds.Platform(app)

	s, err := dls.OptimalFIFO(p, dls.Float64)
	if err != nil {
		t.Fatal(err)
	}
	if s.Throughput() <= 0 || !s.IsFIFO() {
		t.Fatalf("bad schedule: %v", s)
	}

	counts, err := dls.DistributeInteger(s.Alpha, s.SendOrder, 100)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	loads := make([]float64, len(counts))
	for i, c := range counts {
		total += c
		loads[i] = float64(c)
	}
	if total != 100 {
		t.Fatalf("rounding lost units: %d", total)
	}

	res, err := dls.Simulate(dls.SimulationParams{
		App:         app,
		Speeds:      speeds,
		Loads:       loads,
		SendOrder:   s.SendOrder,
		ReturnOrder: s.ReturnOrder,
	})
	if err != nil {
		t.Fatal(err)
	}
	predicted := dls.MakespanForLoad(s, 100)
	if math.Abs(res.Makespan-predicted)/predicted > 0.25 {
		t.Errorf("simulated %g too far from predicted %g", res.Makespan, predicted)
	}
}

func TestFacadeBusRoutines(t *testing.T) {
	p := dls.NewBus(0.1, 0.05, 0.4, 0.6, 0.8)
	rho, err := dls.BusFIFOThroughput(p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := dls.BusFIFOSchedule(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Throughput()-rho) > 1e-9 {
		t.Errorf("schedule %g vs closed form %g", s.Throughput(), rho)
	}
	exact, err := dls.ExactBusFIFOThroughput(p)
	if err != nil {
		t.Fatal(err)
	}
	ef, _ := exact.Float64()
	if math.Abs(ef-rho) > 1e-9 {
		t.Errorf("exact %g vs float %g", ef, rho)
	}
	lifo, err := dls.BusLIFOThroughput(p)
	if err != nil {
		t.Fatal(err)
	}
	two, err := dls.BusTwoPortFIFOThroughput(p)
	if err != nil {
		t.Fatal(err)
	}
	if !(lifo <= rho+1e-9 && rho <= two+1e-9) {
		t.Errorf("ordering broken: lifo %g, fifo %g, two-port %g", lifo, rho, two)
	}
}

func TestFacadeScenarioAndSearches(t *testing.T) {
	p := dls.NewPlatform(
		dls.Worker{C: 0.05, W: 0.3, D: 0.025},
		dls.Worker{C: 0.08, W: 0.2, D: 0.040},
		dls.Worker{C: 0.10, W: 0.5, D: 0.050},
	)
	order := dls.Order{0, 1, 2}
	sc, err := dls.SolveScenario(p, order, dls.Order{2, 1, 0}, dls.OnePort, dls.Exact)
	if err != nil {
		t.Fatal(err)
	}
	if !sc.IsLIFO() {
		t.Error("reverse return order must be LIFO")
	}
	fifo, _, err := dls.BestFIFOExhaustive(p, dls.OnePort, dls.Float64)
	if err != nil {
		t.Fatal(err)
	}
	lifo, _, err := dls.BestLIFOExhaustive(p, dls.OnePort, dls.Float64)
	if err != nil {
		t.Fatal(err)
	}
	pair, err := dls.BestPairExhaustive(p, dls.OnePort, dls.Float64)
	if err != nil {
		t.Fatal(err)
	}
	best := pair.Schedule.Throughput()
	if fifo.Throughput() > best+1e-9 || lifo.Throughput() > best+1e-9 {
		t.Error("fixed disciplines cannot beat the unrestricted pair search")
	}
	incc, err := dls.IncC(p, dls.OnePort, dls.Float64)
	if err != nil {
		t.Fatal(err)
	}
	incw, err := dls.IncW(p, dls.OnePort, dls.Float64)
	if err != nil {
		t.Fatal(err)
	}
	if incw.Throughput() > incc.Throughput()+1e-9 {
		t.Error("INC_W beat INC_C with a common z < 1, contradicting Theorem 1")
	}
	if _, err := dls.FIFOWithOrder(p, order, dls.TwoPort, dls.Float64); err != nil {
		t.Fatal(err)
	}
	if _, err := dls.LIFOWithOrder(p, order, dls.TwoPort, dls.Float64); err != nil {
		t.Fatal(err)
	}
	if _, err := dls.OptimalLIFO(p, dls.Float64); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeErrNoCommonZ(t *testing.T) {
	p := dls.NewPlatform(
		dls.Worker{C: 1, W: 1, D: 0.5},
		dls.Worker{C: 1, W: 1, D: 0.7},
	)
	if _, err := dls.OptimalFIFO(p, dls.Float64); err != dls.ErrNoCommonZ {
		t.Errorf("want ErrNoCommonZ, got %v", err)
	}
}

func TestFacadeFig14(t *testing.T) {
	app := dls.DefaultApp(400)
	blocked := dls.Fig14Speeds(1).Platform(app)
	s, err := dls.OptimalFIFO(blocked, dls.Float64)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range s.Participants() {
		if w == 3 {
			t.Error("x=1: slow worker enrolled")
		}
	}
}
