package dls_test

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"repro/dls"
)

// randomRequest draws a request with every field exercised: random
// platform, any strategy name, random enums, optional orders, affine
// payloads and load. Requests need not be solvable — the wire format
// round-trips anything representable.
func randomRequest(rng *rand.Rand) dls.Request {
	p := dls.RandomSpeeds(rng, 2+rng.Intn(5), dls.Family(rng.Intn(3))).Platform(dls.DefaultApp(100))
	req := dls.Request{
		Platform: p,
		Strategy: dls.Strategies()[rng.Intn(len(dls.Strategies()))],
		Model:    dls.Model(rng.Intn(2)),
		Arith:    dls.Arith(rng.Intn(2)),
		Eval:     []dls.EvalMode{dls.EvalAuto, dls.EvalClosedForm, dls.EvalDirect, dls.EvalSimplex, dls.EvalExact}[rng.Intn(5)],
	}
	if rng.Intn(2) == 0 {
		req.Send = p.ByC()
		req.Return = p.ByC().Reverse()
	}
	if rng.Intn(3) == 0 {
		aff := dls.ZeroAffine(p.P())
		for i := 0; i < p.P(); i++ {
			aff.In[i] = rng.Float64()
			aff.Out[i] = rng.Float64()
			aff.Comp[i] = rng.Float64()
		}
		req.Affine = &aff
	}
	if rng.Intn(2) == 0 {
		req.Load = 1 + rng.Float64()*1000
	}
	return req
}

// TestRequestJSONRoundTrip: marshal → unmarshal reproduces the request
// exactly (platforms compare by value including names, enums by identity).
func TestRequestJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5150))
	for i := 0; i < 200; i++ {
		req := randomRequest(rng)
		data, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("request %d: marshal: %v", i, err)
		}
		var back dls.Request
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("request %d: unmarshal %s: %v", i, data, err)
		}
		if !reflect.DeepEqual(req, back) {
			t.Fatalf("request %d: round trip drifted:\n  in:  %+v\n  out: %+v\n  wire: %s", i, req, back, data)
		}
	}
}

// TestRequestJSONDefaults: zero-valued knobs are omitted on the wire and
// absent fields decode to the zero values, so the two spellings agree.
func TestRequestJSONDefaults(t *testing.T) {
	req := dls.Request{Strategy: dls.StrategyFIFO}
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"strategy":"fifo"}` {
		t.Errorf("defaults not omitted: %s", data)
	}
	var back dls.Request
	if err := json.Unmarshal([]byte(`{"strategy":"fifo"}`), &back); err != nil {
		t.Fatal(err)
	}
	if back.Model != dls.OnePort || back.Arith != dls.Float64 || back.Eval != dls.EvalAuto {
		t.Errorf("absent enums decoded non-zero: %+v", back)
	}
}

// TestRequestJSONExplicitNames: every enum spelling decodes to its value.
func TestRequestJSONExplicitNames(t *testing.T) {
	wire := `{
		"platform": {"workers": [{"c": 0.1, "w": 0.5, "d": 0.05}]},
		"strategy": "scenario",
		"model": "two-port",
		"arith": "exact",
		"eval": "exact",
		"send": [0],
		"return": [0],
		"load": 250
	}`
	var req dls.Request
	if err := json.Unmarshal([]byte(wire), &req); err != nil {
		t.Fatal(err)
	}
	if req.Model != dls.TwoPort || req.Arith != dls.Exact || req.Eval != dls.EvalExact {
		t.Errorf("enums decoded wrong: %+v", req)
	}
	if req.Platform.P() != 1 || req.Load != 250 {
		t.Errorf("payload decoded wrong: %+v", req)
	}
}

// TestRequestJSONRejects: unknown enum names and invalid platforms fail
// loudly rather than defaulting.
func TestRequestJSONRejects(t *testing.T) {
	for name, wire := range map[string]string{
		"unknown model":    `{"strategy":"fifo","model":"three-port"}`,
		"unknown arith":    `{"strategy":"fifo","arith":"decimal"}`,
		"unknown eval":     `{"strategy":"fifo","eval":"magic"}`,
		"invalid platform": `{"strategy":"fifo","platform":{"workers":[{"c":-1,"w":1,"d":1}]}}`,
		"malformed":        `{"strategy":`,
	} {
		var req dls.Request
		if err := json.Unmarshal([]byte(wire), &req); err == nil {
			t.Errorf("%s accepted: %s", name, wire)
		}
	}
}

// FuzzRequestJSON feeds arbitrary bytes through the decoder; everything
// that decodes must re-encode and decode back to the same request (the
// wire format has one canonical form per value).
func FuzzRequestJSON(f *testing.F) {
	f.Add([]byte(`{"strategy":"fifo"}`))
	f.Add([]byte(`{"strategy":"scenario","model":"two-port","send":[1,0],"return":[0,1]}`))
	f.Add([]byte(`{"platform":{"workers":[{"c":0.1,"w":0.5,"d":0.05}]},"strategy":"lifo","arith":"exact","load":10}`))
	f.Add([]byte(`{"strategy":"fifo-affine","affine":{"in":[0.1],"out":[0.2],"comp":[0.3]}}`))
	rng := rand.New(rand.NewSource(5151))
	for i := 0; i < 8; i++ {
		data, err := json.Marshal(randomRequest(rng))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var req dls.Request
		if err := json.Unmarshal(data, &req); err != nil {
			t.Skip()
		}
		re, err := json.Marshal(req)
		if err != nil {
			// Only non-finite floats are unmarshallable, and the decoder
			// cannot produce them from JSON.
			t.Fatalf("decoded request does not re-encode: %v", err)
		}
		var back dls.Request
		if err := json.Unmarshal(re, &back); err != nil {
			t.Fatalf("re-encoded request does not decode: %s: %v", re, err)
		}
		if !reflect.DeepEqual(req, back) {
			t.Fatalf("round trip drifted:\n  first:  %+v\n  second: %+v", req, back)
		}
	})
}
