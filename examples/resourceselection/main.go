// Resourceselection reproduces the paper's Section 5.3.4 case study
// interactively: with return messages, the best FIFO schedule may leave
// workers unused — "which is in sharp contrast with previous results from
// the literature". The platform is the paper's 4-worker table; the
// communication speed x of the slow fourth worker decides whether it is
// worth enrolling.
package main

import (
	"fmt"
	"log"

	"repro/dls"
)

func main() {
	const matrixSize = 400
	app := dls.DefaultApp(matrixSize)

	fmt.Println("worker:              1     2     3     4")
	fmt.Println("communication speed: 10    8     8     x")
	fmt.Println("computation speed:   9     9     10    1")
	fmt.Println()
	fmt.Printf("%-6s %-14s %-22s %-12s\n", "x", "throughput", "participants", "alpha[4]")

	for _, x := range []float64{0.5, 1, 1.5, 2, 2.5, 3, 4, 6, 8} {
		p := dls.Fig14Speeds(x).Platform(app)
		s, err := dls.OptimalFIFO(p, dls.Float64)
		if err != nil {
			log.Fatal(err)
		}
		used := "—"
		for _, w := range s.Participants() {
			if w == 3 {
				used = fmt.Sprintf("%.3f", s.Alpha[3])
			}
		}
		// Pre-format the slice: fmt would otherwise apply the column width
		// to every element.
		fmt.Printf("%-6.3g %-14.6g %-22s %-12s\n",
			x, s.Throughput(), fmt.Sprintf("%v", s.Participants()), used)
	}

	fmt.Println()
	fmt.Println("The fourth worker joins the computation only once its link is fast")
	fmt.Println("enough that its result message does not cost the others more port")
	fmt.Println("time than the work it contributes — the paper's Figure 14 behaviour")
	fmt.Println("(x = 1: unused; x = 3: used).")

	// The same study per availability, as in Figure 14: restrict the
	// platform to the first k workers.
	fmt.Println()
	full := dls.Fig14Speeds(1)
	fmt.Printf("%-20s %-14s %-14s\n", "available workers", "lp time (s)", "enrolled")
	for k := 1; k <= 4; k++ {
		sp := dls.Speeds{Comm: full.Comm[:k], Comp: full.Comp[:k]}
		p := sp.Platform(app)
		s, err := dls.OptimalFIFO(p, dls.Float64)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20d %-14.4f %-14d\n", k, dls.MakespanForLoad(s, 1000), len(s.Participants()))
	}
}
