// Resourceselection reproduces the paper's Section 5.3.4 case study
// interactively: with return messages, the best FIFO schedule may leave
// workers unused — "which is in sharp contrast with previous results from
// the literature". The platform is the paper's 4-worker table; the
// communication speed x of the slow fourth worker decides whether it is
// worth enrolling.
//
// The whole sweep runs as one engine batch: every x value becomes a
// Request and SolveBatch fans them across a worker pool, returning results
// in sweep order regardless of parallelism.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/dls"
)

func main() {
	const matrixSize = 400
	app := dls.DefaultApp(matrixSize)

	solver, err := dls.NewSolver(dls.WithParallelism(8), dls.WithCache(64))
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	fmt.Println("worker:              1     2     3     4")
	fmt.Println("communication speed: 10    8     8     x")
	fmt.Println("computation speed:   9     9     10    1")
	fmt.Println()
	fmt.Printf("%-6s %-14s %-22s %-12s\n", "x", "throughput", "participants", "alpha[4]")

	xs := []float64{0.5, 1, 1.5, 2, 2.5, 3, 4, 6, 8}
	reqs := make([]dls.Request, len(xs))
	for i, x := range xs {
		reqs[i] = dls.Request{
			Platform: dls.Fig14Speeds(x).Platform(app),
			Strategy: dls.StrategyFIFO,
		}
	}
	results, err := solver.SolveBatch(ctx, reqs)
	if err != nil {
		log.Fatal(err)
	}
	for i, x := range xs {
		s := results[i].Schedule
		used := "—"
		for _, w := range s.Participants() {
			if w == 3 {
				used = fmt.Sprintf("%.3f", s.Alpha[3])
			}
		}
		// Pre-format the slice: fmt would otherwise apply the column width
		// to every element.
		fmt.Printf("%-6.3g %-14.6g %-22s %-12s\n",
			x, results[i].Throughput, fmt.Sprintf("%v", s.Participants()), used)
	}

	fmt.Println()
	fmt.Println("The fourth worker joins the computation only once its link is fast")
	fmt.Println("enough that its result message does not cost the others more port")
	fmt.Println("time than the work it contributes — the paper's Figure 14 behaviour")
	fmt.Println("(x = 1: unused; x = 3: used).")

	// The same study per availability, as in Figure 14: restrict the
	// platform to the first k workers — again one batch over the prefixes.
	fmt.Println()
	full := dls.Fig14Speeds(1)
	avail := make([]dls.Request, 4)
	for k := 1; k <= 4; k++ {
		sp := dls.Speeds{Comm: full.Comm[:k], Comp: full.Comp[:k]}
		avail[k-1] = dls.Request{
			Platform: sp.Platform(app),
			Strategy: dls.StrategyFIFO,
			Load:     1000,
		}
	}
	byAvail, err := solver.SolveBatch(ctx, avail)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-20s %-14s %-14s\n", "available workers", "lp time (s)", "enrolled")
	for k := 1; k <= 4; k++ {
		r := byAvail[k-1]
		fmt.Printf("%-20d %-14.4f %-14d\n", k, r.Makespan, len(r.Schedule.Participants()))
	}
}
