// Quickstart: build a small heterogeneous star platform, ask the dls
// engine for the optimal one-port FIFO schedule with return messages
// (Theorem 1 of RR-5738), and inspect the result.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/dls"
)

func main() {
	// A star with four workers. Costs are per load unit: C to ship the
	// input to the worker, W to compute, D to ship the result back
	// (here D = C/2: results are half the size of inputs, as for matrix
	// products).
	p := dls.NewPlatform(
		dls.Worker{Name: "fast-link", C: 0.05, W: 0.40, D: 0.025},
		dls.Worker{Name: "balanced", C: 0.10, W: 0.25, D: 0.050},
		dls.Worker{Name: "fast-cpu", C: 0.20, W: 0.10, D: 0.100},
		dls.Worker{Name: "slow", C: 0.40, W: 0.80, D: 0.200},
	)

	// The engine: strategies come from a registry, results can be cached,
	// and batches fan out over a worker pool.
	solver, err := dls.NewSolver(dls.WithCache(32))
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// Optimal one-port FIFO schedule: workers are served by non-decreasing
	// link cost C, and the linear program picks the loads — possibly
	// leaving slow workers out entirely (resource selection). Load asks
	// the engine for the 10,000-unit makespan along the way.
	res, err := solver.Solve(ctx, dls.Request{
		Platform: p,
		Strategy: dls.StrategyFIFO,
		Load:     10000,
	})
	if err != nil {
		log.Fatal(err)
	}
	s := res.Schedule

	fmt.Printf("throughput: %.4f load units per time unit\n", res.Throughput)
	fmt.Printf("send order: %v (non-decreasing C, per Theorem 1)\n", s.SendOrder)
	fmt.Printf("enrolled:   %v of %d workers\n", s.Participants(), p.P())
	fmt.Println()
	fmt.Printf("%-10s %-9s %-9s %-9s %-9s\n", "worker", "load", "recv-end", "comp-end", "idle")
	for _, wt := range s.Timeline(p) {
		fmt.Printf("%-10s %-9.4f %-9.4f %-9.4f %-9.4f\n",
			p.Workers[wt.Worker].Name, s.Alpha[wt.Worker], wt.SendEnd, wt.CompEnd, wt.Idle)
	}

	// By linearity, processing 10,000 units takes 10000/ρ time units.
	fmt.Printf("\nmakespan for 10000 units: %.2f time units\n", res.Makespan)

	// Compare with the optimal LIFO schedule: on heterogeneous platforms
	// neither discipline dominates; here the LP decides. Same engine, one
	// strategy name apart.
	lifo, err := solver.Solve(ctx, dls.Request{Platform: p, Strategy: dls.StrategyLIFO})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LIFO throughput: %.4f (FIFO/LIFO ratio %.4f)\n",
		lifo.Throughput, res.Throughput/lifo.Throughput)
}
