// Busformula demonstrates Theorem 2: on a bus network the optimal one-port
// FIFO throughput has the closed form
//
//	ρ_opt = min{ 1/(c+d),  Σu_i / (1 + d·Σu_i) },
//	u_i   = 1/(d+w_i) · Π_{j≤i} (d+w_j)/(c+w_j),
//
// which this example checks against the linear program (in exact rational
// arithmetic — the two must agree as an identity) and explores across the
// communication/computation ratio, showing the crossover between the
// port-bound regime (ρ = 1/(c+d)) and the pipeline-bound regime (ρ = ρ̃).
package main

import (
	"context"
	"fmt"
	"log"

	"repro/dls"
)

func main() {
	// A bus with five workers of assorted speeds. d = c/2 (matrix-product
	// ratio).
	ws := []float64{0.3, 0.45, 0.6, 0.9, 1.2}

	fmt.Printf("%-10s %-14s %-14s %-14s %-10s\n",
		"c", "closed form", "two-port ρ̃", "bound 1/(c+d)", "regime")
	for _, c := range []float64{0.02, 0.05, 0.1, 0.2, 0.4, 0.8, 1.6} {
		d := c / 2
		p := dls.NewBus(c, d, ws...)
		rho, err := dls.BusFIFOThroughput(p)
		if err != nil {
			log.Fatal(err)
		}
		two, err := dls.BusTwoPortFIFOThroughput(p)
		if err != nil {
			log.Fatal(err)
		}
		bound := 1 / (c + d)
		regime := "pipeline-bound"
		if bound < two {
			regime = "port-bound"
		}
		fmt.Printf("%-10.3g %-14.6g %-14.6g %-14.6g %-10s\n", c, rho, two, bound, regime)
	}

	// Identity check: the closed form equals the LP optimum exactly. The
	// engine solves the Theorem 1 LP in exact rational arithmetic.
	p := dls.NewBus(0.1, 0.05, ws...)
	closed, err := dls.ExactBusFIFOThroughput(p)
	if err != nil {
		log.Fatal(err)
	}
	solver, err := dls.NewSolver(dls.WithArith(dls.Exact))
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	res, err := solver.Solve(ctx, dls.Request{Platform: p, Strategy: dls.StrategyFIFO})
	if err != nil {
		log.Fatal(err)
	}
	sched := res.Schedule
	cf, _ := closed.Float64()
	fmt.Printf("\nexact closed form: %s = %.12g\n", closed.RatString(), cf)
	fmt.Printf("LP optimum:        %.12g (difference %.3g)\n",
		res.Throughput, res.Throughput-cf)

	// Theorem 2 also says every worker participates on a bus — check.
	fmt.Printf("participants: %d of %d (Theorem 2: all enrolled)\n",
		len(sched.Participants()), p.P())

	// The constructive schedule from the proof, with its uniform return
	// gap in the port-bound regime.
	fast := dls.NewBus(0.4, 0.2, ws...) // comm-heavy: port-bound
	bus, err := solver.Solve(ctx, dls.Request{Platform: fast, Strategy: dls.StrategyBusFIFO})
	if err != nil {
		log.Fatal(err)
	}
	s := bus.Schedule
	fmt.Printf("\nport-bound construction: ρ = %.6g = 1/(c+d) = %.6g\n",
		s.Throughput(), 1/(0.4+0.2))
	for _, wt := range s.Timeline(fast) {
		fmt.Printf("  %s: idle gap before return = %.6g\n",
			fast.Workers[wt.Worker].Name, wt.Idle)
	}
}
