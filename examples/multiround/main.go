// Multiround explores the extension discussed in the paper's related-work
// section: one-round distribution (this paper's setting) versus uniform
// multi-round distribution.
//
// Two regimes are shown:
//
//  1. Starting from the one-round LP-optimal loads, multi-round brings
//     little: the optimal one-port schedule packs the master port tightly,
//     leaving only a sliver of pipeline slack — evidence for the paper's
//     one-round focus.
//  2. Starting from a naive equal split on a compute-heavy platform,
//     multi-round pipelining genuinely helps under the pure linear model
//     (monotonically, degenerately so — the reason multi-round analyses
//     need affine costs), while a per-message start-up latency creates a
//     finite optimal round count R*.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/dls"
)

func main() {
	app := dls.DefaultApp(200) // compute-heavy at this size
	rng := rand.New(rand.NewSource(11))
	speeds := dls.RandomSpeeds(rng, 6, dls.Heterogeneous)
	platform := speeds.Platform(app)

	// Regime 1: the one-round optimum is port-saturated; rounds don't help.
	res, err := dls.Solve(context.Background(), dls.Request{Platform: platform, Strategy: dls.StrategyFIFO})
	if err != nil {
		log.Fatal(err)
	}
	scaled := res.Schedule.ScaledToLoad(1000)
	optSweep, err := dls.MultiRoundSweep(dls.MultiRoundFromSchedule(platform, scaled, 0), 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LP-optimal loads: makespan R=1: %.4f s, R=16: %.4f s (gain %.2f%%)\n",
		optSweep[0], optSweep[15], 100*(1-optSweep[15]/optSweep[0]))
	fmt.Println("  → the one-round optimum already packs the port tightly; compare the")
	fmt.Println("    naive split below, where rounds recover several times as much.")
	fmt.Println()

	// Regime 2: a naive equal split across all workers.
	equal := make([]float64, platform.P())
	for i := range equal {
		equal[i] = 1000.0 / float64(platform.P())
	}
	order := platform.ByC()

	noLat, err := dls.MultiRoundSweep(dls.MultiRoundParams{
		Platform: platform, Loads: equal, Order: order,
	}, 24)
	if err != nil {
		log.Fatal(err)
	}
	withLat, err := dls.MultiRoundSweep(dls.MultiRoundParams{
		Platform: platform, Loads: equal, Order: order, Latency: 0.004,
	}, 24)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("equal-split loads:")
	fmt.Printf("%-8s %-24s %-24s\n", "rounds", "makespan (latency 0)", "makespan (latency 4 ms)")
	for _, r := range []int{1, 2, 3, 4, 6, 8, 12, 16, 24} {
		fmt.Printf("%-8d %-24.4f %-24.4f\n", r, noLat[r-1], withLat[r-1])
	}

	bestR, bestM, err := dls.BestRounds(dls.MultiRoundParams{
		Platform: platform, Loads: equal, Order: order, Latency: 0.004,
	}, 24)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Printf("linear model: rounds only ever help (%.2f%% at R=24) — the degenerate\n",
		100*(1-noLat[23]/noLat[0]))
	fmt.Printf("preference for infinitely small messages; with 4 ms per message the\n")
	fmt.Printf("optimum is finite: R* = %d (%.4f s), %.2f%% faster than one round.\n",
		bestR, bestM, 100*(1-bestM/withLat[0]))
}
