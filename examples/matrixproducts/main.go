// Matrixproducts runs the paper's full experimental pipeline on one
// platform: draw a random heterogeneous 11-worker cluster, schedule 1000
// matrix products (the Section 5 application, z = 1/2) with the optimal
// one-port FIFO discipline, round the loads to whole matrices, execute the
// schedule as a real master/worker message-passing program on the virtual
// cluster, and compare measurement against the linear-program prediction.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/dls"
)

func main() {
	const (
		matrixSize = 120
		products   = 1000
		seed       = 7
	)
	app := dls.DefaultApp(matrixSize)
	rng := rand.New(rand.NewSource(seed))
	speeds := dls.RandomSpeeds(rng, 11, dls.Heterogeneous)
	platform := speeds.Platform(app)

	fmt.Printf("random heterogeneous platform (comm/comp speeds 1..10):\n%s\n", platform)

	// Theory: optimal FIFO schedule and its predicted makespan, in one
	// engine request (Load fills Result.Makespan).
	res, err := dls.Solve(context.Background(), dls.Request{
		Platform: platform,
		Strategy: dls.StrategyFIFO,
		Load:     products,
	})
	if err != nil {
		log.Fatal(err)
	}
	sched, predicted := res.Schedule, res.Makespan
	fmt.Printf("optimal FIFO enrolls %d of %d workers, predicted makespan %.3f s\n",
		len(sched.Participants()), platform.P(), predicted)

	// Round the rational loads to whole matrices (Section 5 policy).
	counts, err := dls.DistributeInteger(sched.Alpha, sched.SendOrder, products)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("integer distribution: %v\n", counts)

	// Execute on the virtual cluster, with mild realism: 50 µs per-message
	// latency, 5%% performance jitter, and the super-cubic compute term
	// that models cache effects.
	loads := make([]float64, len(counts))
	for i, c := range counts {
		loads[i] = float64(c)
	}
	sim, err := dls.Simulate(dls.SimulationParams{
		App:         app,
		Speeds:      speeds,
		Loads:       loads,
		SendOrder:   sched.SendOrder,
		ReturnOrder: sched.ReturnOrder,
		Latency:     5e-5,
		Jitter:      0.05,
		Seed:        seed,
		CacheFactor: 0.002,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured makespan: %.3f s (%.1f%% of prediction)\n",
		sim.Makespan, 100*sim.Makespan/predicted)

	// The paper's Figure 9-style execution trace.
	fmt.Println()
	fmt.Println(sim.Trace.Gantt(platform.P()+1, 100, sim.ProcNames))

	// Master utilization shows the one-port serialization.
	fmt.Printf("master port busy %.1f%% of the makespan\n", 100*sim.Trace.Utilization(0))
}
